"""Pre-warm the result store/cache for the BTB-sweep figures (fig14/15).

A thin front end over the declarative sweep engine: the grid — sweep
benchmarks x headline policies x {4K, 64K} BTB entries — lives in
``examples/sweeps/btb_sweep.toml``; this script compiles and executes
it (``--jobs N`` or ``REPRO_JOBS``). Warm cells in ``--store DIR`` /
``REPRO_STORE`` or the local result cache are skipped.
"""
import argparse
import time
from pathlib import Path

from repro.service.store import ResultStore, store_from_env
from repro.sweeps import compile_spec, load_spec, run_sweep

SPEC = Path(__file__).resolve().parents[1] / "examples" / "sweeps" / "btb_sweep.toml"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS, "
                             "else all cores)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="durable result store to read/write "
                             "(default: REPRO_STORE env, else none)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write the JSON sweep report here")
    args = parser.parse_args()
    store = ResultStore(args.store) if args.store else store_from_env()

    t0 = time.time()
    plan = compile_spec(load_spec(SPEC))
    report = run_sweep(plan, store=store, jobs=args.jobs,
                       report_path=args.report, verbose=True)
    counts = report.counts
    print(f"DONE {counts['total']} cells: {counts['store']} store, "
          f"{counts['cache']} cache, {counts['executed']} executed, "
          f"{counts['failed']} failed in {time.time() - t0:.0f}s")
    raise SystemExit(1 if counts["failed"] else 0)


if __name__ == "__main__":
    main()

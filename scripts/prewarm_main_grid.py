"""Pre-warm the result cache for the main figure grid.

Fans the (benchmark x policy) grid out across worker processes
(``--jobs N`` or ``REPRO_JOBS``; default: all cores) and prints the run
manifest summary when done. Already-cached cells are skipped.
``--store DIR`` (or ``REPRO_STORE``) also persists every cell into the
durable result store, so later served or batch runs reuse the grid.
"""
import argparse
import time

from repro.service.store import ResultStore, store_from_env
from repro.simulator import manifest as manifest_mod
from repro.simulator.runner import run_suite_parallel
from repro.workloads.profiles import BENCHMARK_NAMES

POLICIES = ["baseline", "2x_il1", "emissary", "eip_46", "eip_analytical",
            "eip_46_emissary", "pdip_11", "pdip_22", "pdip_44", "pdip_87",
            "pdip_44_emissary", "pdip_44_zero_cost", "fec_ideal"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS, "
                             "else all cores)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="durable result store to read/write "
                             "(default: REPRO_STORE env, else none)")
    args = parser.parse_args()
    store = ResultStore(args.store) if args.store else store_from_env()

    t0 = time.time()
    manifest = manifest_mod.RunManifest(label="prewarm_main_grid")
    results = run_suite_parallel(POLICIES, benchmarks=BENCHMARK_NAMES,
                                 jobs=args.jobs, verbose=True,
                                 manifest=manifest, store=store)
    path = manifest.write()
    print(manifest_mod.render_summary(manifest.to_dict()))
    print(f"manifest: {path}")
    print(f"DONE {len(results)} benchmarks x {len(POLICIES)} policies "
          f"in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()

"""Pre-warm the result cache for the main figure grid."""
import sys, time
from repro.simulator.runner import run_benchmark, DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.workloads.profiles import BENCHMARK_NAMES

POLICIES = ["baseline","2x_il1","emissary","eip_46","eip_analytical","eip_46_emissary",
            "pdip_11","pdip_22","pdip_44","pdip_87","pdip_44_emissary","pdip_44_zero_cost","fec_ideal"]
t0=time.time()
for bench in BENCHMARK_NAMES:
    for pol in POLICIES:
        t1=time.time()
        st = run_benchmark(bench, pol)
        print(f"{time.time()-t0:7.0f}s {bench:16s} {pol:18s} IPC={st.ipc:.3f} L1I={st.l1i_mpki:.1f} ({time.time()-t1:.0f}s)", flush=True)
print("DONE", time.time()-t0)

#!/usr/bin/env python
"""Standalone lint entry: ``repro lint`` plus ruff/mypy when available.

Run from the repo root::

    python scripts/lint.py [paths...]

Always runs the repo's own AST rules (:mod:`repro.analysis`) — those
have no third-party dependencies. When ruff and/or mypy are installed
(they are in the CI image but not required locally), also runs
``ruff check``, ``ruff format --check`` on the strictly-formatted
targets, and ``mypy`` on the strictly-typed targets; missing tools are
reported and skipped, never a failure. Exit status is the worst of the
stages that actually ran.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.cli import main  # noqa: E402

#: targets held to ruff-format / strict-mypy standards (new code first;
#: the rest of the tree is graded by the repro rules and ruff check only)
STRICT_FORMAT_TARGETS = ["src/repro/analysis", "scripts/lint.py"]
STRICT_TYPE_TARGETS = ["src/repro/analysis"]


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run(label: str, argv: list) -> int:
    print(f"== {label}: {' '.join(argv)}", flush=True)
    return subprocess.call(argv, cwd=REPO)


def run_all(paths: list) -> int:
    worst = 0
    scan = paths or ["src/repro"]

    print("== repro lint", flush=True)
    worst = max(worst, main(["lint"] + scan))

    if _have("ruff"):
        worst = max(worst, _run("ruff check", [sys.executable, "-m", "ruff", "check", *scan]))
        worst = max(
            worst,
            _run(
                "ruff format --check",
                [sys.executable, "-m", "ruff", "format", "--check", *STRICT_FORMAT_TARGETS],
            ),
        )
    else:
        print("== ruff not installed; skipping (CI runs it)", flush=True)

    if _have("mypy"):
        worst = max(
            worst, _run("mypy", [sys.executable, "-m", "mypy", *STRICT_TYPE_TARGETS])
        )
    else:
        print("== mypy not installed; skipping (CI runs it)", flush=True)

    return worst


if __name__ == "__main__":
    sys.exit(run_all(sys.argv[1:]))

#!/usr/bin/env python
"""Regenerate the bundled external traces under ``src/repro/traces/data/``.

The bundled benchmarks exist to exercise control-flow structure the
synthetic profile generator cannot emit:

* ``trace-phase`` — three distinct program phases, each confined to its
  own code region, with hard transitions; tests the downsampler's
  phase-head preservation and PDIP's reaction to working-set turnover.
* ``trace-coldburst`` — a hot kernel loop periodically interrupted by
  bursts into fresh, never-revisited init-style code (cold-line storms).
* ``trace-fanout`` — a dispatch loop over a megamorphic indirect call
  site with Zipf-skewed targets (irregular fan-out beyond the
  generator's per-site fanout cap).

Each program is a deterministic mini-interpreter over a synthetic
address space, so the emitted branch records are flow-consistent by
construction (every record's pc lies in the block entered by the
previous record's flow-out).  Output is schema-v1 JSONL, gzipped with
``mtime=0`` so regeneration is byte-stable.  The script re-ingests what
it wrote with default parameters and rewrites ``bundled.json`` — the
pinned-digest manifest the trace registry loads.

Run from the repo root::

    PYTHONPATH=src python scripts/make_bundled_traces.py
"""

from __future__ import annotations

import gzip
import io
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.traces.ingest import ingest_path  # noqa: E402
from repro.utils import derive_rng  # noqa: E402

DATA_DIR = os.path.join(os.path.dirname(__file__), "..",
                        "src", "repro", "traces", "data")

ISIZE = 4


class Program:
    """A tiny flow-consistent program: blocks, a walker, a record log."""

    def __init__(self):
        self.blocks = {}  # start addr -> (n_instr, terminator dict)
        self.records = []
        self.stack = []

    def add_function(self, base, body):
        """Lay out consecutive blocks; ``body`` is [(n_instr, term), ...].

        ``term`` decides the control transfer when the block executes;
        see ``step``.  Returns the list of block start addresses.
        """
        addrs = []
        addr = base
        for n, term in body:
            self.blocks[addr] = (n, term)
            addrs.append(addr)
            addr += n * ISIZE
        return addrs

    def step(self, cur, rng):
        """Execute the block at ``cur``; returns the next block address."""
        n, term = self.blocks[cur]
        pc = cur + (n - 1) * ISIZE
        kind = term["kind"]
        if kind == "cond":
            taken = rng.random() < term["bias"]
            target = term["target"] if taken else 0
        elif kind == "return":
            taken, target = True, self.stack.pop()
        elif kind in ("call", "indirect_call"):
            choices = term["targets"]
            weights = term.get("weights")
            if weights:
                target = rng.choices(choices, weights=weights)[0]
            else:
                target = choices[rng.randrange(len(choices))]
            taken = True
            self.stack.append(pc + ISIZE)
        elif kind == "indirect":
            target = term["targets"][rng.randrange(len(term["targets"]))]
            taken = True
        else:  # direct
            taken, target = True, term["target"]
        rec = {"pc": pc, "size": ISIZE, "taken": taken}
        if taken:
            rec["target"] = target
        if kind != "cond" or rng.random() < 0.9:  # drop some hints: they
            rec["kind"] = kind                    # are optional in the wild
        self.records.append(rec)
        return target if taken else pc + ISIZE

    def run(self, entry, steps, rng):
        cur = entry
        for _ in range(steps):
            cur = self.step(cur, rng)
        return cur


def leaf(base, nblocks, rng, loop_bias=0.45):
    """A callable function: a few cond blocks ending in a return."""
    body = []
    addr = base
    starts = []
    for i in range(nblocks):
        n = rng.randrange(4, 17)
        starts.append(addr)
        addr += n * ISIZE
        body.append([n, None])
    for i, entry in enumerate(body[:-1]):
        back = starts[max(0, i - rng.randrange(1, 3))]
        entry[1] = {"kind": "cond", "bias": loop_bias if back < starts[i]
                    else 0.2, "target": back}
    body[-1][1] = {"kind": "return"}
    return [(n, t) for n, t in body]


def make_phase():
    """Three phases, each a driver loop over its own function set."""
    rng = derive_rng(2024, "bundled-phase")
    prog = Program()
    phase_entries = []
    region = 0x40_0000
    for phase in range(3):
        fns = []
        for f in range(160):
            base = region + phase * 0x10_0000 + f * 0x1000
            fns.append(prog.add_function(base, leaf(base, 8, rng))[0])
        drv_base = region + phase * 0x10_0000 + 0x8_0000
        driver = [
            (4, {"kind": "indirect_call", "targets": fns,
                 "weights": [1.0 / (i + 1) ** 0.4 for i in
                             range(len(fns))]}),
            # ~0.3% exit per iteration: a phase dwells for a few
            # thousand records, so the full walk covers all three phases
            (3, {"kind": "cond", "bias": 0.997, "target": drv_base}),
        ]
        # the not-taken exit of the loop branch falls through to a
        # direct jump into the next phase's driver (patched below)
        driver.append((2, {"kind": "direct", "target": 0}))
        phase_entries.append(prog.add_function(drv_base, driver))
    for phase in range(3):
        nxt = phase_entries[(phase + 1) % 3][0]
        jump_addr = phase_entries[phase][2]
        n, term = prog.blocks[jump_addr]
        term["target"] = nxt
    prog.run(phase_entries[0][0], 34_000, rng)
    return prog.records


def make_coldburst():
    """A hot kernel with periodic one-shot cold-code bursts."""
    rng = derive_rng(2024, "bundled-coldburst")
    prog = Program()
    hot = []
    for f in range(96):
        base = 0x50_0000 + f * 0x1000
        hot.append(prog.add_function(base, leaf(base, 6, rng))[0])
    cold = []
    for f in range(160):
        base = 0x90_0000 + f * 0x2000
        cold.append(prog.add_function(base, leaf(base, 6, rng,
                                                 loop_bias=0.3))[0])
    kernel_base = 0x58_0000
    kernel = prog.add_function(kernel_base, [
        (5, {"kind": "call", "targets": hot}),
        (4, {"kind": "cond", "bias": 0.9, "target": kernel_base}),
        (2, {"kind": "direct", "target": kernel_base}),
    ])
    cur = kernel[0]
    burst = 0
    for chunk in range(80):
        cur = prog.run(cur, 280, rng)
        if chunk % 4 == 3 and burst + 3 <= len(cold):
            # burst: a chain of fresh cold functions (each return pops
            # into the next), then control resumes in the hot kernel
            chain = cold[burst:burst + 3]
            burst += 3
            prog.stack.append(kernel[0])
            for entry in reversed(chain[1:]):
                prog.stack.append(entry)
            cur = prog.run(chain[0], 60, rng)
    return prog.records


def make_fanout():
    """A dispatch loop over a megamorphic, Zipf-skewed call site."""
    rng = derive_rng(2024, "bundled-fanout")
    prog = Program()
    handlers = []
    for f in range(128):
        base = 0x70_0000 + f * 0x1800
        handlers.append(prog.add_function(base, leaf(base, 8, rng))[0])
    disp_base = 0x7F_0000
    weights = [1.0 / (i + 1) ** 0.5 for i in range(len(handlers))]
    disp = prog.add_function(disp_base, [
        (6, {"kind": "indirect_call", "targets": handlers,
             "weights": weights}),
        (3, {"kind": "cond", "bias": 0.98, "target": disp_base}),
        (2, {"kind": "direct", "target": disp_base}),
    ])
    prog.run(disp[0], 26_000, rng)
    return prog.records


def write_trace(name, records):
    path = os.path.join(DATA_DIR, name + ".jsonl.gz")
    buf = io.StringIO()
    buf.write(json.dumps({"schema": "repro-xtrace", "version": 1,
                          "isize": ISIZE, "source": name},
                         sort_keys=True) + "\n")
    for rec in records:
        buf.write(json.dumps(rec, sort_keys=True) + "\n")
    data = buf.getvalue().encode("utf-8")
    with open(path, "wb") as fh:
        with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
            gz.write(data)
    return path


BUNDLES = {
    "trace-phase": (make_phase,
                    "bundled trace: three-phase working-set turnover",
                    {"backend_stall_prob": 0.12, "data_access_prob": 0.06,
                     "data_lines": 2600}),
    "trace-coldburst": (make_coldburst,
                        "bundled trace: hot kernel with cold-code bursts",
                        {"backend_stall_prob": 0.10, "data_access_prob": 0.04,
                         "data_lines": 1800}),
    "trace-fanout": (make_fanout,
                     "bundled trace: megamorphic Zipf-skewed dispatch",
                     {"backend_stall_prob": 0.13, "data_access_prob": 0.07,
                      "data_lines": 3000}),
}


def main():
    os.makedirs(DATA_DIR, exist_ok=True)
    manifest = {}
    for name, (make, description, overrides) in sorted(BUNDLES.items()):
        records = make()
        path = write_trace(name, records)
        report = ingest_path(path)  # default budget/window/seed
        manifest[name] = {
            "file": name + ".jsonl.gz",
            "digest": report.digest,
            "events": report.events,
            "instructions": report.instructions,
            "description": description,
            "profile": overrides,
        }
        print("%-16s records=%-6d kept_events=%-6d instructions=%-6d %s"
              % (name, len(records), report.events, report.instructions,
                 report.digest))
    with open(os.path.join(DATA_DIR, "bundled.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":
    main()

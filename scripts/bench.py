#!/usr/bin/env python
"""Standalone entry for the simulation-core bench (same as ``repro bench``).

Run from the repo root::

    PYTHONPATH=src python scripts/bench.py [--quick] [--check] ...

Records/compares against ``benchmarks/bench_baseline.json`` and writes
``BENCH_runner.json``. See :mod:`repro.bench` for the cell grid and the
host-normalization scheme used by the CI regression gate.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench"] + sys.argv[1:]))

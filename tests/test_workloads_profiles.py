"""Tests for the benchmark profile catalog."""

import dataclasses

import pytest

from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    PROFILES,
    WorkloadProfile,
    get_profile,
)


class TestCatalog:
    def test_sixteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 16

    def test_every_name_has_profile(self):
        for name in BENCHMARK_NAMES:
            assert name in PROFILES

    def test_profiles_keyed_by_own_name(self):
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_get_profile(self):
        assert get_profile("cassandra").name == "cassandra"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("nonexistent-benchmark")

    def test_paper_suite_members(self):
        for name in ("cassandra", "tomcat", "kafka", "xalan", "finagle-http",
                     "dotty", "tpcc", "ycsb", "twitter", "voter", "smallbank",
                     "tatp", "sibench", "noop", "verilator",
                     "speedometer2.0"):
            assert name in BENCHMARK_NAMES


class TestProfileValues:
    def test_probabilities_in_range(self):
        for profile in PROFILES.values():
            for field in ("p_cond", "p_indirect", "p_direct",
                          "indirect_call_frac", "leaf_call_frac",
                          "loop_back_prob", "loop_taken_bias",
                          "backend_stall_prob", "data_access_prob",
                          "indirect_noise", "indirect_mono_frac"):
                value = getattr(profile, field)
                assert 0.0 <= value <= 1.0, (profile.name, field, value)

    def test_terminator_mix_leaves_fallthrough_mass(self):
        for profile in PROFILES.values():
            total = profile.p_cond + profile.p_indirect + profile.p_direct
            assert total < 1.0, profile.name

    def test_bias_mix_sums_to_at_most_one(self):
        for profile in PROFILES.values():
            assert sum(profile.bias_mix) <= 1.0 + 1e-9

    def test_structure_sane(self):
        for profile in PROFILES.values():
            assert profile.num_handlers + profile.num_leaves < profile.num_functions
            assert profile.call_depth >= 1
            assert profile.mean_instructions_per_block >= 2

    def test_miss_heavy_benchmarks_are_bigger(self):
        assert (PROFILES["cassandra"].num_functions
                > PROFILES["noop"].num_functions)
        assert (PROFILES["verilator"].mean_instructions_per_block
                > PROFILES["cassandra"].mean_instructions_per_block)


class TestScaled:
    def test_scaled_overrides_field(self):
        p = get_profile("cassandra").scaled(num_functions=123)
        assert p.num_functions == 123

    def test_scaled_preserves_others(self):
        base = get_profile("cassandra")
        p = base.scaled(num_functions=123)
        assert p.num_handlers == base.num_handlers

    def test_scaled_returns_new_object(self):
        base = get_profile("cassandra")
        assert base.scaled() is not base

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_profile("cassandra").num_functions = 5

"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "noop", "baseline", "--instructions", "5000"])
        assert args.benchmark == "noop"
        assert args.instructions == 5000

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus", "baseline"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "noop", "bogus"])

    def test_figure_ids(self):
        for fig in FIGURES:
            args = build_parser().parse_args(["figure", fig])
            assert args.figure == fig

    def test_jobs_flag(self):
        args = build_parser().parse_args(["suite", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["figure", "fig09", "--jobs", "2"])
        assert args.jobs == 2

    def test_manifest_args(self):
        args = build_parser().parse_args(["manifest"])
        assert args.path is None
        args = build_parser().parse_args(["manifest", "m.json", "--cells"])
        assert args.path == "m.json"
        assert args.cells


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cassandra" in out
        assert "pdip_44" in out
        assert "fig10" in out

    def test_run(self, capsys):
        rc = main(["run", "noop", "baseline", "--instructions", "4000",
                   "--warmup", "800", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_prefetcher_shows_ppki(self, capsys):
        main(["run", "noop", "pdip_44", "--instructions", "4000",
              "--warmup", "800", "--no-cache"])
        out = capsys.readouterr().out
        assert "noop / pdip_44" in out

    def test_suite_with_geomean(self, capsys):
        rc = main(["suite", "--benchmarks", "noop",
                   "--policies", "baseline,pdip_44",
                   "--instructions", "4000", "--warmup", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "geomean speedup pdip_44" in out

    def test_suite_parallel_writes_manifest(self, capsys):
        rc = main(["suite", "--benchmarks", "noop",
                   "--policies", "baseline", "--jobs", "2",
                   "--instructions", "3000", "--warmup", "500"])
        assert rc == 0
        assert "manifest:" in capsys.readouterr().out
        rc = main(["manifest"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells" in out and "hit rate" in out

    def test_manifest_cells_listing(self, capsys):
        main(["suite", "--benchmarks", "noop", "--policies", "baseline",
              "--instructions", "3000", "--warmup", "500"])
        capsys.readouterr()
        rc = main(["manifest", "--cells"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noop" in out and "baseline" in out

    def test_manifest_none_found(self, capsys):
        assert main(["manifest"]) == 1
        assert "no manifests" in capsys.readouterr().out

    def test_manifest_unreadable_path(self, capsys):
        assert main(["manifest", "/nope/does-not-exist.json"]) == 1
        assert "cannot read manifest" in capsys.readouterr().out

    def test_workload(self, capsys):
        rc = main(["workload", "noop", "--instructions", "20000"])
        assert rc == 0
        assert "branch mix" in capsys.readouterr().out

    def test_figure_instant(self, capsys):
        rc = main(["figure", "tab05"])
        assert rc == 0
        assert "PDIP(44)" in capsys.readouterr().out

    def test_trace_record_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "noop.trace")
        rc = main(["trace", "record", "noop", path, "--blocks", "8000"])
        assert rc == 0
        assert "recorded" in capsys.readouterr().out
        rc = main(["trace", "replay", "noop", path,
                   "--instructions", "3000", "--warmup", "500"])
        assert rc == 0
        assert "replayed" in capsys.readouterr().out

"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "noop", "baseline", "--instructions", "5000"])
        assert args.benchmark == "noop"
        assert args.instructions == 5000

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus", "baseline"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "noop", "bogus"])

    def test_figure_ids(self):
        for fig in FIGURES:
            args = build_parser().parse_args(["figure", fig])
            assert args.figure == fig

    def test_jobs_flag(self):
        args = build_parser().parse_args(["suite", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["figure", "fig09", "--jobs", "2"])
        assert args.jobs == 2

    def test_manifest_args(self):
        args = build_parser().parse_args(["manifest"])
        assert args.path is None
        args = build_parser().parse_args(["manifest", "m.json", "--cells"])
        assert args.path == "m.json"
        assert args.cells

    def test_store_flag(self):
        for cmd in (["run", "noop", "baseline"], ["suite"],
                    ["figure", "fig09"]):
            args = build_parser().parse_args(cmd + ["--store", "/tmp/s"])
            assert args.store == "/tmp/s"
            assert build_parser().parse_args(cmd).store is None

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--jobs", "3", "--queue-limit",
             "8", "--timeout", "5.5", "--retries", "1", "--no-store",
             "--allow-faults"])
        assert args.port == 9000
        assert args.jobs == 3
        assert args.queue_limit == 8
        assert args.timeout == 5.5
        assert args.retries == 1
        assert args.no_store
        assert args.allow_faults
        defaults = build_parser().parse_args(["serve"])
        assert defaults.host == "127.0.0.1"
        assert defaults.port is None
        assert not defaults.allow_faults

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "tatp", "pdip_44", "--instructions", "30000",
             "--warmup", "6000", "--priority", "5", "--wait"])
        assert args.benchmark == "tatp"
        assert args.policy == "pdip_44"
        assert args.instructions == 30000
        assert args.priority == 5
        assert args.wait

    def test_submit_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "noop", "bogus"])

    def test_jobs_args(self):
        args = build_parser().parse_args(["jobs"])
        assert args.job is None and not args.drain
        args = build_parser().parse_args(
            ["jobs", "abc123", "--port", "9000"])
        assert args.job == "abc123"
        assert args.port == 9000
        args = build_parser().parse_args(["jobs", "--cancel", "abc",
                                          "--drain"])
        assert args.cancel == "abc"
        assert args.drain


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cassandra" in out
        assert "pdip_44" in out
        assert "fig10" in out

    def test_run(self, capsys):
        rc = main(["run", "noop", "baseline", "--instructions", "4000",
                   "--warmup", "800", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_with_store_persists_cell(self, tmp_path, capsys):
        from repro.service.store import ResultStore

        root = tmp_path / "store"
        rc = main(["run", "noop", "baseline", "--instructions", "4000",
                   "--warmup", "800", "--store", str(root)])
        assert rc == 0
        with ResultStore(root) as store:
            assert len(store) == 1
            key = ResultStore.cell_key("noop", "baseline", 4000, 800)
            assert store.get(key) is not None

    def test_run_prefetcher_shows_ppki(self, capsys):
        main(["run", "noop", "pdip_44", "--instructions", "4000",
              "--warmup", "800", "--no-cache"])
        out = capsys.readouterr().out
        assert "noop / pdip_44" in out

    def test_suite_with_geomean(self, capsys):
        rc = main(["suite", "--benchmarks", "noop",
                   "--policies", "baseline,pdip_44",
                   "--instructions", "4000", "--warmup", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "geomean speedup pdip_44" in out

    def test_suite_parallel_writes_manifest(self, capsys):
        rc = main(["suite", "--benchmarks", "noop",
                   "--policies", "baseline", "--jobs", "2",
                   "--instructions", "3000", "--warmup", "500"])
        assert rc == 0
        assert "manifest:" in capsys.readouterr().out
        rc = main(["manifest"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells" in out and "hit rate" in out

    def test_manifest_cells_listing(self, capsys):
        main(["suite", "--benchmarks", "noop", "--policies", "baseline",
              "--instructions", "3000", "--warmup", "500"])
        capsys.readouterr()
        rc = main(["manifest", "--cells"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noop" in out and "baseline" in out

    def test_manifest_none_found(self, capsys):
        assert main(["manifest"]) == 1
        assert "no manifests" in capsys.readouterr().out

    def test_manifest_unreadable_path(self, capsys):
        assert main(["manifest", "/nope/does-not-exist.json"]) == 1
        assert "cannot read manifest" in capsys.readouterr().out

    def test_workload(self, capsys):
        rc = main(["workload", "noop", "--instructions", "20000"])
        assert rc == 0
        assert "branch mix" in capsys.readouterr().out

    def test_figure_instant(self, capsys):
        rc = main(["figure", "tab05"])
        assert rc == 0
        assert "PDIP(44)" in capsys.readouterr().out

    def test_trace_record_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "noop.trace")
        rc = main(["trace", "record", "noop", path, "--blocks", "8000"])
        assert rc == 0
        assert "recorded" in capsys.readouterr().out
        rc = main(["trace", "replay", "noop", path,
                   "--instructions", "3000", "--warmup", "500"])
        assert rc == 0
        assert "replayed" in capsys.readouterr().out

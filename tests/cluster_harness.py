"""Fault-injection harness for the simulation cluster.

Spins up a *real* fleet — one ``repro serve --coordinator`` subprocess
plus N ``repro worker`` subprocesses, each with its own store shard —
and hands the chaos tests levers to break it on cue:

* :meth:`Cluster.kill` — SIGKILL a worker (machine death mid-job; the
  coordinator sees the dispatch socket reset and retries elsewhere);
* :meth:`Cluster.pause` / :meth:`Cluster.resume` — SIGSTOP/SIGCONT a
  worker (hang/partition; heartbeats lapse, the coordinator declares
  it dead, and on resume the zombie re-registers);
* :meth:`Cluster.terminate` — SIGTERM (graceful drain, exit 0);
* fault-injection submissions (``fault: crash|fail|hang``) when the
  cluster is started with ``allow_faults=True``.

Shard state is inspected straight from each worker's on-disk store —
including a killed worker's, whose files survive it — so tests can
assert the cluster-wide invariant: exactly one blob per unique run
digest, no duplicate executions.

The cluster is only "done" when the chaos tests in
``tests/test_cluster.py`` pass, not when the happy path does.
"""

from __future__ import annotations

import json
import os
import re
import signal
import sqlite3
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobState

SRC = Path(__file__).resolve().parent.parent / "src"
_PORT_RE = re.compile(r"http://[\d.]+:(\d+)")

#: a small, fast cell (about 0.1 s simulated) used all over the tests
SMALL_CELL = dict(benchmark="noop", policy="baseline",
                  instructions=2000, warmup=300)
#: a cell slow enough (~2 s) to reliably kill a worker mid-job
BIG_CELL = dict(benchmark="noop", policy="baseline",
                instructions=400_000, warmup=5000)


def _spawn(argv: List[str], env: Dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)


def _read_port(proc: subprocess.Popen, what: str) -> int:
    """Parse the announce line; the subprocess prints it at listen."""
    line = proc.stdout.readline()
    match = _PORT_RE.search(line or "")
    if not match:
        raise AssertionError("no listen line from %s: %r" % (what, line))
    return int(match.group(1))


@dataclass
class WorkerProc:
    """One worker subprocess and where its store shard lives."""

    name: str
    proc: subprocess.Popen
    port: int
    store_root: Path
    paused: bool = False

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None


class Cluster:
    """A coordinator + N worker subprocesses under test control."""

    def __init__(self, tmp_path, workers: int = 2, slots: int = 1,
                 heartbeat_interval: float = 0.2,
                 heartbeat_timeout: float = 1.0,
                 retries: int = 2, backoff: float = 0.05,
                 timeout: Optional[float] = None,
                 queue_limit: Optional[int] = None,
                 allow_faults: bool = False) -> None:
        self.root = Path(tmp_path)
        self.slots = slots
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.queue_limit = queue_limit
        self.allow_faults = allow_faults
        self.n_workers = workers
        self.env = dict(
            os.environ,
            PYTHONPATH=str(SRC) + os.pathsep
            + os.environ.get("PYTHONPATH", ""),
            REPRO_CACHE_DIR=str(self.root / "cache"),
            REPRO_NO_MANIFEST="1")
        self.coordinator: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.workers: Dict[str, WorkerProc] = {}
        self._next_worker = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Cluster":
        argv = ["serve", "--coordinator", "--port", "0",
                "--heartbeat-interval", str(self.heartbeat_interval),
                "--heartbeat-timeout", str(self.heartbeat_timeout),
                "--retries", str(self.retries),
                "--backoff", str(self.backoff)]
        if self.timeout is not None:
            argv += ["--timeout", str(self.timeout)]
        if self.queue_limit is not None:
            argv += ["--queue-limit", str(self.queue_limit)]
        if self.allow_faults:
            argv += ["--allow-faults"]
        self.coordinator = _spawn(argv, self.env)
        self.port = _read_port(self.coordinator, "coordinator")
        for _ in range(self.n_workers):
            self.add_worker()
        self.wait_alive(self.n_workers)
        return self

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def add_worker(self, name: Optional[str] = None,
                   slots: Optional[int] = None) -> WorkerProc:
        """Spawn one worker and register it with the coordinator."""
        if name is None:
            name = "w%d" % self._next_worker
            self._next_worker += 1
        store_root = self.root / "shards" / name
        proc = _spawn(["worker",
                       "--coordinator-port", str(self.port),
                       "--name", name, "--port", "0",
                       "--slots", str(slots or self.slots),
                       "--store", str(store_root)], self.env)
        port = _read_port(proc, "worker %s" % name)
        worker = WorkerProc(name=name, proc=proc, port=port,
                            store_root=store_root)
        self.workers[name] = worker
        return worker

    def stop(self) -> None:
        """Best-effort teardown: SIGTERM everything, SIGKILL stragglers."""
        procs = [w.proc for w in self.workers.values()]
        if self.coordinator is not None:
            procs.append(self.coordinator)
        for worker in self.workers.values():
            if worker.paused:
                self.resume(worker.name)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + 30
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    def drain_fleet(self) -> Dict[str, int]:
        """SIGTERM the whole fleet: coordinator first, then workers.

        The coordinator drains its backlog *through* the workers, so
        they must outlive it; once it exits the workers are idle and
        drain trivially. Returns each process's exit code — a clean
        fleet drain is all zeros.
        """
        codes: Dict[str, int] = {}
        self.coordinator.send_signal(signal.SIGTERM)
        codes["coordinator"] = self.coordinator.wait(timeout=120)
        for worker in self.workers.values():
            if worker.alive:
                worker.proc.send_signal(signal.SIGTERM)
        for name, worker in self.workers.items():
            codes[name] = worker.proc.wait(timeout=60)
        return codes

    # ------------------------------------------------------------------
    # chaos levers
    # ------------------------------------------------------------------
    def kill(self, name: str) -> None:
        """SIGKILL a worker: machine death, nothing gets to clean up."""
        worker = self.workers[name]
        worker.proc.kill()
        worker.proc.wait(timeout=30)

    def terminate(self, name: str) -> int:
        """SIGTERM a worker: graceful drain; returns its exit code."""
        worker = self.workers[name]
        worker.proc.send_signal(signal.SIGTERM)
        return worker.proc.wait(timeout=60)

    def pause(self, name: str) -> None:
        """SIGSTOP a worker: a hang/partition — the process is alive
        but heartbeats (and everything else) freeze."""
        worker = self.workers[name]
        worker.proc.send_signal(signal.SIGSTOP)
        worker.paused = True

    def resume(self, name: str) -> None:
        """SIGCONT a paused worker; it will re-register as a zombie."""
        worker = self.workers[name]
        try:
            worker.proc.send_signal(signal.SIGCONT)
        except OSError:
            pass
        worker.paused = False

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def client(self, timeout: float = 30.0, **kwargs) -> ServiceClient:
        return ServiceClient(port=self.port, timeout=timeout, **kwargs)

    def health(self) -> Dict[str, object]:
        return self.client().health()

    def alive_worker_ids(self) -> List[str]:
        return [str(w["id"]) for w in self.client().workers()
                if w["state"] == "alive"]

    def wait_alive(self, n: int, timeout: float = 20.0) -> None:
        """Block until exactly ``n`` workers are alive on the ring."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if len(self.alive_worker_ids()) == n:
                    return
            except (ServiceError, OSError):
                pass
            time.sleep(0.05)
        raise AssertionError("never saw %d alive workers (have %r)"
                             % (n, self.alive_worker_ids()))

    def wait_state(self, job_id: str, state: str,
                   timeout: float = 30.0) -> Dict[str, object]:
        """Poll one job until it reaches ``state`` (asserts no detour
        into a different terminal state)."""
        client = self.client()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = client.status(job_id)
            if job["state"] == state:
                return job
            if (job["state"] in JobState.TERMINAL
                    and state not in JobState.TERMINAL):
                raise AssertionError("job went %s waiting for %s: %r"
                                     % (job["state"], state, job))
            time.sleep(0.02)
        raise AssertionError("job %s never reached %s" % (job_id, state))

    def wait_all_done(self, job_ids: List[str],
                      timeout: float = 120.0) -> List[Dict[str, object]]:
        client = self.client()
        return [client.wait(job_id, timeout=timeout)
                for job_id in job_ids]

    def shard_rows(self, names: Optional[List[str]] = None
                   ) -> Dict[str, List[Dict[str, str]]]:
        """Read each shard's index rows straight off disk.

        Works for dead workers too (their files outlive them), so a
        test can count blobs across the *whole* cluster store: the
        union of every shard.
        """
        out: Dict[str, List[Dict[str, str]]] = {}
        for name, worker in self.workers.items():
            if names is not None and name not in names:
                continue
            db = worker.store_root / "store.sqlite"
            if not db.exists():
                out[name] = []
                continue
            con = sqlite3.connect(str(db))
            try:
                rows = con.execute(
                    "SELECT key, stats_blob FROM results").fetchall()
            finally:
                con.close()
            out[name] = [{"key": k, "stats_blob": d} for k, d in rows]
        return out

    def cluster_blob_counts(self) -> Dict[str, int]:
        """How many times each run digest is stored, cluster-wide."""
        counts: Dict[str, int] = {}
        for rows in self.shard_rows().values():
            for row in rows:
                counts[row["key"]] = counts.get(row["key"], 0) + 1
        return counts

    def shard_stats(self, name: str, key: str) -> Optional[dict]:
        """Load one stored stats payload from a shard's blob dir."""
        for row in self.shard_rows([name])[name]:
            if row["key"] == key:
                digest = row["stats_blob"]
                blob = (self.workers[name].store_root / "blobs"
                        / digest[:2] / (digest + ".json"))
                with open(blob) as fh:
                    return json.load(fh)
        return None

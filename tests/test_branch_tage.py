"""Tests for the TAGE conditional predictor."""

import pytest

from repro.branch.tage import FoldedHistory, TAGEPredictor, _sat_update


class TestFoldedHistory:
    def test_incremental_fold_is_window_function(self):
        """The folded value must depend only on the last ``length`` bits:
        replaying just the current window from a fresh register gives the
        same value as the long incremental history."""
        import random
        length, bits = 13, 5
        fh = FoldedHistory(length, bits)
        history = [0] * length  # current window, oldest first
        rng = random.Random(3)
        for _ in range(200):
            new_bit = rng.randint(0, 1)
            old_bit = history[0]
            fh.update(new_bit, old_bit)
            history = history[1:] + [new_bit]
            check = FoldedHistory(length, bits)
            replay = [0] * length
            for b in history:
                check.update(b, replay[0])
                replay = replay[1:] + [b]
            assert fh.value == check.value

    def test_value_bounded(self):
        fh = FoldedHistory(40, 7)
        for i in range(500):
            fh.update(i & 1, (i >> 1) & 1)
            assert 0 <= fh.value < (1 << 7)


class TestSatUpdate:
    def test_increments(self):
        assert _sat_update(0, True, -4, 3) == 1

    def test_saturates_high(self):
        assert _sat_update(3, True, -4, 3) == 3

    def test_decrements(self):
        assert _sat_update(0, False, -4, 3) == -1

    def test_saturates_low(self):
        assert _sat_update(-4, False, -4, 3) == -4


class TestTAGELearning:
    def _train(self, outcomes, pc=0x4000, rounds=1):
        tage = TAGEPredictor(num_tables=4, log_entries=7, seed=1)
        correct = 0
        total = 0
        for r in range(rounds):
            for taken in outcomes:
                pred = tage.predict(pc)
                if r == rounds - 1:
                    total += 1
                    correct += (pred == taken)
                tage.update(pc, taken, pred)
        return correct / total

    def test_learns_always_taken(self):
        assert self._train([True] * 50, rounds=2) > 0.95

    def test_learns_always_not_taken(self):
        assert self._train([False] * 50, rounds=2) > 0.95

    def test_learns_alternating_pattern(self):
        """T,NT,T,NT is pure history correlation — bimodal can't get it,
        the tagged tables must."""
        pattern = [True, False] * 40
        assert self._train(pattern, rounds=6) > 0.9

    def test_learns_short_loop_pattern(self):
        # 3 taken, 1 not-taken (a 4-iteration loop)
        pattern = ([True, True, True, False]) * 25
        assert self._train(pattern, rounds=6) > 0.85

    def test_mispredict_rate_tracked(self):
        tage = TAGEPredictor(num_tables=4, log_entries=7, seed=1)
        for taken in [True, False] * 30:
            pred = tage.predict(0x100)
            tage.update(0x100, taken, pred)
        assert tage.predictions == 60
        assert 0.0 <= tage.mispredict_rate() <= 1.0

    def test_distinct_branches_independent(self):
        tage = TAGEPredictor(num_tables=4, log_entries=8, seed=1)
        for _ in range(100):
            for pc, taken in ((0x1000, True), (0x2000, False)):
                pred = tage.predict(pc)
                tage.update(pc, taken, pred)
        assert tage.predict(0x1000) is True
        tage.update(0x1000, True, True)
        assert tage.predict(0x2000) is False

    def test_history_lengths_geometric(self):
        tage = TAGEPredictor(num_tables=6, min_history=4, max_history=128)
        lens = tage.hist_lens
        assert lens[0] == 4
        assert lens[-1] == 128
        assert lens == sorted(lens)

    def test_storage_positive(self):
        assert TAGEPredictor().storage_kb > 0

"""Tests for the workload characterization module."""

import pytest

from repro.workloads.analysis import (
    ReuseDistanceProfile,
    WorkloadCharacteristics,
    _LRUStack,
    characterize,
    render,
)
from repro.workloads.profiles import WorkloadProfile, get_profile

SMALL = WorkloadProfile(name="analysis-test", num_functions=60,
                        num_handlers=8, num_leaves=10, call_depth=3)


class TestLRUStack:
    def test_first_access_cold(self):
        lru = _LRUStack()
        assert lru.access(5) is None

    def test_immediate_reuse_distance_zero(self):
        lru = _LRUStack()
        lru.access(5)
        assert lru.access(5) == 0

    def test_distance_counts_distinct_intervening(self):
        lru = _LRUStack()
        lru.access(1)
        lru.access(2)
        lru.access(3)
        assert lru.access(1) == 2

    def test_repeats_do_not_inflate_distance(self):
        lru = _LRUStack()
        lru.access(1)
        lru.access(2)
        lru.access(2)
        lru.access(2)
        assert lru.access(1) == 1


class TestReuseProfile:
    def _profile(self):
        return ReuseDistanceProfile(
            bucket_bounds=(16, 64, 1 << 30),
            bucket_counts=[50, 30, 20],
            cold_accesses=10,
            total_accesses=110,
        )

    def test_tiny_cache_misses_most(self):
        p = self._profile()
        # distances >= 16 plus cold miss a 16-line cache... bucket bound 16
        # means distances < 16 hit
        assert p.miss_rate_at(8) == pytest.approx((50 + 30 + 20 + 10) / 110)

    def test_large_cache_only_cold(self):
        p = self._profile()
        assert p.miss_rate_at(1 << 31) == pytest.approx(10 / 110)

    def test_monotone_in_cache_size(self):
        p = self._profile()
        rates = [p.miss_rate_at(c) for c in (8, 32, 128, 1 << 31)]
        assert rates == sorted(rates, reverse=True)

    def test_empty_profile(self):
        p = ReuseDistanceProfile(bucket_bounds=(16,), bucket_counts=[0])
        assert p.miss_rate_at(16) == 0.0


class TestCharacterize:
    @pytest.fixture(scope="class")
    def ch(self):
        return characterize(SMALL, instructions=30_000, seed=2)

    def test_instruction_budget_met(self, ch):
        assert ch.instructions >= 30_000

    def test_branch_mix_sums_to_one(self, ch):
        assert sum(ch.branch_mix.values()) == pytest.approx(1.0)

    def test_live_set_within_footprint(self, ch):
        assert 0 < ch.live_lines <= ch.footprint_lines

    def test_reuse_profile_counts_accesses(self, ch):
        assert ch.reuse.total_accesses > 0
        counted = ch.reuse.cold_accesses + sum(ch.reuse.bucket_counts)
        assert counted == ch.reuse.total_accesses

    def test_estimated_mpki_decreases_with_cache(self, ch):
        assert (ch.estimated_l1i_mpki(64)
                >= ch.estimated_l1i_mpki(1024))

    def test_render(self, ch):
        text = render(ch)
        assert "branch mix" in text
        assert "MPKI" in text

    def test_deterministic(self):
        a = characterize(SMALL, instructions=10_000, seed=2)
        b = characterize(SMALL, instructions=10_000, seed=2)
        assert a.live_lines == b.live_lines
        assert a.reuse.bucket_counts == b.reuse.bucket_counts


class TestRegimeOrdering:
    def test_heavy_profile_misses_more(self):
        heavy = characterize(get_profile("cassandra"), instructions=60_000)
        light = characterize(get_profile("noop"), instructions=60_000)
        assert (heavy.reuse.miss_rate_at(128)
                > light.reuse.miss_rate_at(128))

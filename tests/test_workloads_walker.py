"""Tests for the correct-path walker and speculative wrong-path walker."""

import pytest

from repro.workloads.generator import generate_layout
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout, Function
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import (
    PathWalker,
    SpeculativePath,
    static_majority_successor,
)

SMALL = WorkloadProfile(name="walker-test", num_functions=50, num_handlers=6,
                        num_leaves=8, call_depth=3)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(SMALL, seed=11)


class TestPathWalker:
    def test_deterministic(self, layout):
        a = PathWalker(layout, seed=5)
        b = PathWalker(layout, seed=5)
        for _ in range(500):
            ea, eb = a.next_event(), b.next_event()
            assert ea.block.bid == eb.block.bid
            assert ea.taken == eb.taken
            assert ea.next_bid == eb.next_bid

    def test_seed_matters(self, layout):
        a = PathWalker(layout, seed=5)
        b = PathWalker(layout, seed=6)
        trace_a = [a.next_event().block.bid for _ in range(300)]
        trace_b = [b.next_event().block.bid for _ in range(300)]
        assert trace_a != trace_b

    def test_successors_are_consistent(self, layout):
        """The event's next_bid must be a legal successor of the block."""
        w = PathWalker(layout, seed=5)
        prev = None
        for _ in range(1000):
            ev = w.next_event()
            if prev is not None:
                assert ev.block.bid == prev.next_bid
            prev = ev

    def test_taken_matches_kind(self, layout):
        w = PathWalker(layout, seed=5)
        for _ in range(1000):
            ev = w.next_event()
            kind = ev.block.kind
            if kind in (BranchKind.DIRECT, BranchKind.CALL,
                        BranchKind.INDIRECT, BranchKind.INDIRECT_CALL,
                        BranchKind.RETURN):
                assert ev.taken
            if kind is BranchKind.FALLTHROUGH:
                assert not ev.taken

    def test_target_addr_matches_next_block(self, layout):
        w = PathWalker(layout, seed=5)
        for _ in range(500):
            ev = w.next_event()
            assert ev.target_addr == layout.blocks[ev.next_bid].addr

    def test_calls_and_returns_balance(self, layout):
        """A return always goes back to the pending call's fallthrough."""
        w = PathWalker(layout, seed=5)
        stack = []
        for _ in range(2000):
            ev = w.next_event()
            kind = ev.block.kind
            if kind in (BranchKind.CALL, BranchKind.INDIRECT_CALL):
                stack.append(ev.block.fallthrough)
            elif kind is BranchKind.RETURN and stack:
                assert ev.next_bid == stack.pop()

    def test_stack_bounded(self, layout):
        w = PathWalker(layout, seed=5)
        for _ in range(5000):
            w.next_event()
            assert len(w.stack) < 64

    def test_snapshot_stack_is_a_copy(self, layout):
        w = PathWalker(layout, seed=5)
        for _ in range(50):
            w.next_event()
        snap = w.snapshot_stack()
        before = list(snap)
        for _ in range(100):
            w.next_event()
        assert snap == before

    def test_indirect_noise_zero_follows_pattern(self, layout):
        """With zero noise, an indirect site cycles its pattern exactly."""
        w = PathWalker(layout, seed=5, indirect_noise=0.0)
        seen = {}
        for _ in range(5000):
            ev = w.next_event()
            blk = ev.block
            if blk.kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
                pos = seen.get(blk.bid, 0)
                expected = blk.indirect_targets[
                    blk.indirect_pattern[pos % len(blk.indirect_pattern)]]
                assert ev.next_bid == expected
                seen[blk.bid] = pos + 1


class TestStaticMajority:
    def test_cond_follows_bias(self):
        blk = BasicBlock(bid=0, addr=0, num_instructions=1,
                         kind=BranchKind.COND, taken_target=1, fallthrough=2,
                         taken_bias=0.9)
        lay = CodeLayout(blocks=[blk], functions=[])
        assert static_majority_successor(lay, blk, []) == 1
        blk.taken_bias = 0.1
        assert static_majority_successor(lay, blk, []) == 2

    def test_return_pops_stack(self):
        blk = BasicBlock(bid=0, addr=0, num_instructions=1,
                         kind=BranchKind.RETURN)
        lay = CodeLayout(blocks=[blk], functions=[])
        stack = [7]
        assert static_majority_successor(lay, blk, stack) == 7
        assert stack == []

    def test_return_empty_stack_dead_ends(self):
        blk = BasicBlock(bid=0, addr=0, num_instructions=1,
                         kind=BranchKind.RETURN)
        lay = CodeLayout(blocks=[blk], functions=[])
        assert static_majority_successor(lay, blk, []) is None

    def test_call_pushes_return_point(self):
        blk = BasicBlock(bid=0, addr=0, num_instructions=1,
                         kind=BranchKind.CALL, taken_target=3, fallthrough=1)
        lay = CodeLayout(blocks=[blk], functions=[])
        stack = []
        assert static_majority_successor(lay, blk, stack) == 3
        assert stack == [1]


class TestSpeculativePath:
    def test_none_start_yields_nothing(self, layout):
        path = SpeculativePath(layout, None, [])
        assert path.step() is None

    def test_walks_blocks(self, layout):
        entry = layout.functions[1].entry
        path = SpeculativePath(layout, entry, [], max_blocks=10)
        blocks = []
        while True:
            blk = path.step()
            if blk is None:
                break
            blocks.append(blk)
        assert blocks
        assert blocks[0].bid == entry
        assert len(blocks) <= 10

    def test_does_not_mutate_snapshot(self, layout):
        entry = layout.functions[1].entry
        snapshot = [3, 4, 5]
        path = SpeculativePath(layout, entry, snapshot, max_blocks=50)
        while path.step() is not None:
            pass
        assert snapshot == [3, 4, 5]

    def test_respects_max_blocks(self, layout):
        entry = layout.functions[0].entry  # dispatcher loops forever
        path = SpeculativePath(layout, entry, [], max_blocks=5)
        count = 0
        while path.step() is not None:
            count += 1
        assert count == 5

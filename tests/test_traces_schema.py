"""Schema validation and the malformed-input taxonomy (repro.traces.schema)."""

from __future__ import annotations

import io

import pytest

from repro.traces.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TAXONOMY,
    BlockEvent,
    BranchRecord,
    TraceFormatError,
    TraceIngestError,
    TraceRecordError,
    TraceSchemaError,
    TraceStreamError,
    derive_block_events,
    read_jsonl,
    validate_header,
    validate_record,
    write_jsonl,
)

HEADER = '{"schema": "repro-xtrace", "version": 1, "isize": 4}'


def parse(*lines):
    return read_jsonl(list(lines))


class TestHeader:
    def test_valid_header_preserves_extra_keys(self):
        meta = validate_header({"schema": SCHEMA_NAME,
                               "version": SCHEMA_VERSION,
                                "source": "pin-3.28"})
        assert meta["source"] == "pin-3.28"

    def test_not_json_is_not_a_trace(self):
        with pytest.raises(TraceFormatError) as exc:
            parse("BSTREAM 9000", '{"pc": 1}')
        assert exc.value.category == "not-a-trace"
        assert exc.value.lineno == 1

    def test_wrong_schema_name(self):
        with pytest.raises(TraceFormatError) as exc:
            parse('{"schema": "champsim", "version": 1}')
        assert exc.value.category == "not-a-trace"

    def test_future_version_rejected(self):
        with pytest.raises(TraceSchemaError) as exc:
            parse('{"schema": "repro-xtrace", "version": 2}')
        assert exc.value.category == "unsupported-version"

    def test_version_wrong_type(self):
        with pytest.raises(TraceSchemaError) as exc:
            parse('{"schema": "repro-xtrace", "version": "1"}')
        assert exc.value.category == "bad-header-field"

    def test_bool_version_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_header({"schema": SCHEMA_NAME, "version": True})

    def test_bad_isize(self):
        with pytest.raises(TraceSchemaError) as exc:
            parse('{"schema": "repro-xtrace", "version": 1, "isize": 0}')
        assert exc.value.category == "bad-header-field"

    def test_empty_input(self):
        with pytest.raises(TraceFormatError):
            parse()

    def test_header_but_no_records(self):
        with pytest.raises(TraceSchemaError) as exc:
            parse(HEADER)
        assert exc.value.category == "empty-trace"


class TestRecords:
    def test_minimal_record(self):
        _, records = parse(HEADER, '{"pc": 4096, "taken": false}')
        assert records == [BranchRecord(pc=4096, taken=False, target=0,
                                        size=4, kind="unknown")]

    def test_hex_string_addresses(self):
        _, records = parse(
            HEADER, '{"pc": "0x1000", "taken": true, "target": "0x2000"}')
        assert records[0].pc == 0x1000 and records[0].target == 0x2000

    def test_comments_and_blank_lines_skipped(self):
        _, records = parse("", "# captured by totally-real-tool", HEADER,
                           "# mid-stream comment",
                           '{"pc": 64, "taken": false}')
        assert len(records) == 1

    def test_record_not_json(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, "not json at all")
        assert exc.value.category == "malformed-record"
        assert exc.value.lineno == 2

    def test_record_not_an_object(self):
        with pytest.raises(TraceRecordError):
            parse(HEADER, "[1, 2, 3]")

    def test_missing_pc(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"taken": false}')
        assert exc.value.category == "bad-field-value"

    def test_bool_pc_rejected(self):
        # bool is an int subclass in Python; a trace with "pc": true is
        # corrupt, not address 1
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": true, "taken": false}')
        assert exc.value.category == "bad-field-type"

    def test_non_integer_pc_string(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": "0xZZ", "taken": false}')
        assert exc.value.category == "bad-field-type"

    def test_negative_pc(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": -4, "taken": false}')
        assert exc.value.category == "bad-field-value"

    def test_taken_must_be_bool(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": 4096, "taken": 1}')
        assert exc.value.category == "bad-field-type"

    def test_taken_without_target(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": 4096, "taken": true}')
        assert exc.value.category == "missing-target"

    def test_null_target_counts_as_missing(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": 4096, "taken": true, "target": null}')
        assert exc.value.category == "missing-target"

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceRecordError) as exc:
            parse(HEADER, '{"pc": 4096, "taken": false, "kind": "sideways"}')
        assert exc.value.category == "bad-field-value"

    def test_zero_size_rejected(self):
        with pytest.raises(TraceRecordError) as exc:
            validate_record({"pc": 4, "taken": False, "size": 0}, 4, 2)
        assert exc.value.category == "bad-field-value"


class TestTaxonomy:
    def test_every_category_is_documented(self):
        # every category an error can carry must have a taxonomy row
        for cls in (TraceIngestError, TraceFormatError, TraceSchemaError,
                    TraceRecordError, TraceStreamError):
            assert cls.category in TAXONOMY

    def test_message_carries_category_and_line(self):
        err = TraceRecordError("boom", lineno=17)
        assert str(err) == "[malformed-record] boom (line 17)"
        assert TraceIngestError("x", category="bundle-drift").category == \
            "bundle-drift"

    def test_unknown_category_is_a_programming_error(self):
        with pytest.raises(AssertionError):
            TraceIngestError("x", category="made-up")

    def test_all_errors_are_value_errors(self):
        # callers that do not care about the taxonomy can still catch
        # plain ValueError
        assert issubclass(TraceIngestError, ValueError)


class TestBlockEvents:
    def test_derivation(self):
        records = [
            BranchRecord(pc=0x108, taken=True, target=0x200, size=4,
                         kind="direct"),
            BranchRecord(pc=0x20c, taken=False, target=0, size=4,
                         kind="cond"),
            BranchRecord(pc=0x218, taken=True, target=0x100, size=4,
                         kind="direct"),
        ]
        events = derive_block_events(records)
        # first block starts at record 0's pc; later blocks start at the
        # previous record's flow-out
        assert [(e.start, e.end) for e in events] == [
            (0x108, 0x108), (0x200, 0x20c), (0x210, 0x218)]
        assert events[1].flow_out == 0x210  # not taken: pc + size

    def test_inconsistent_flow(self):
        records = [
            BranchRecord(pc=0x100, taken=True, target=0x500, size=4,
                         kind="direct"),
            BranchRecord(pc=0x400, taken=False, target=0, size=4,
                         kind="cond"),  # pc precedes block start 0x500
        ]
        with pytest.raises(TraceStreamError) as exc:
            derive_block_events(records)
        assert exc.value.category == "inconsistent-flow"

    def test_empty_stream(self):
        with pytest.raises(TraceIngestError) as exc:
            derive_block_events([])
        assert exc.value.category == "empty-trace"

    def test_block_event_key_is_static_identity(self):
        a = BlockEvent(start=1, end=2, size=4, taken=True, target=9,
                       kind="direct")
        b = BlockEvent(start=1, end=2, size=4, taken=False, target=0,
                       kind="cond")
        assert a.key() == b.key()


class TestRoundTrip:
    def test_write_then_read(self):
        records = [
            BranchRecord(pc=0x100, taken=True, target=0x200, size=4,
                         kind="call"),
            BranchRecord(pc=0x204, taken=False, target=0, size=2,
                         kind="cond"),
            BranchRecord(pc=0x20c, taken=True, target=0x104, size=4,
                         kind="return"),
        ]
        buf = io.StringIO()
        write_jsonl(buf, records, meta={"isize": 4, "source": "unit-test"})
        meta, back = read_jsonl(buf.getvalue().splitlines())
        assert back == records
        assert meta["source"] == "unit-test"

"""Tests for the set-associative BTB."""

import pytest

from repro.branch.btb import BTB


class TestBTBBasics:
    def test_miss_on_empty(self):
        btb = BTB(num_entries=64, assoc=4)
        assert btb.lookup(0x1000) is None

    def test_insert_then_hit(self):
        btb = BTB(num_entries=64, assoc=4)
        btb.insert(0x1000, 0x2000, "direct")
        entry = btb.lookup(0x1000)
        assert entry is not None
        assert entry.target == 0x2000
        assert entry.kind == "direct"

    def test_update_in_place(self):
        btb = BTB(num_entries=64, assoc=4)
        btb.insert(0x1000, 0x2000, "indirect")
        btb.insert(0x1000, 0x3000, "indirect")
        assert btb.lookup(0x1000).target == 0x3000

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BTB(num_entries=10, assoc=4)

    def test_hit_rate(self):
        btb = BTB(num_entries=64, assoc=4)
        btb.insert(0x1000, 0x2000, "direct")
        btb.lookup(0x1000)
        btb.lookup(0x9999)
        assert btb.hit_rate() == pytest.approx(0.5)

    def test_storage_matches_paper(self):
        """Table 1 prices an 8K-entry BTB at 119.01 KB; ours lands close."""
        btb = BTB(num_entries=8192, assoc=8)
        assert btb.storage_kb == pytest.approx(119.01, rel=0.05)


class TestBTBReplacement:
    def test_set_eviction_is_lru(self):
        btb = BTB(num_entries=8, assoc=2)  # 4 sets
        # three PCs mapping to the same set (stride = 4 * num_sets words)
        stride = 4 * btb.num_sets * 4
        pcs = [0x1000, 0x1000 + stride, 0x1000 + 2 * stride]
        btb.insert(pcs[0], 1, "direct")
        btb.insert(pcs[1], 2, "direct")
        btb.lookup(pcs[0])            # make pcs[0] most recent
        btb.insert(pcs[2], 3, "direct")  # evicts pcs[1]
        assert btb.lookup(pcs[0]) is not None
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) is not None

    def test_capacity_never_exceeded(self):
        btb = BTB(num_entries=16, assoc=4)
        for i in range(200):
            btb.insert(0x1000 + i * 4, i, "direct")
        resident = sum(len(ways) for ways in btb._sets.values())
        assert resident <= 16

    def test_evictions_counted(self):
        btb = BTB(num_entries=4, assoc=1)
        for i in range(20):
            btb.insert(0x1000 + i * 4, i, "direct")
        assert btb.evictions > 0

"""Tests for the event-horizon fast path (DESIGN.md §10).

The contract under test: cycle skipping must be **observably invisible**
— every counter in :class:`SimulationStats` identical to per-cycle
stepping — while actually skipping cycles, and probes must keep their
every-cycle view unless they opt into the coarse mode.
"""

from __future__ import annotations

from repro.simulator.machine import Machine
from repro.simulator.policies import build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile, get_profile

SMALL = WorkloadProfile(name="horizon-test", num_functions=50,
                        num_handlers=6, num_leaves=8, call_depth=3)


def _machine(policy="baseline", bench=None, seed=3):
    if bench is None:
        profile, layout_seed = SMALL, 2
    else:
        profile, layout_seed = get_profile(bench), 1
    layout = generate_layout(profile, seed=layout_seed)
    return build_machine(layout, profile, get_policy(policy), seed=seed)


class TestEquivalence:
    """Skipping on vs off must be bit-identical, not just close."""

    def _pair(self, policy, bench=None, instructions=4000, warmup=800):
        fast = _machine(policy, bench)
        assert fast.event_horizon  # on by default
        stats_fast = fast.run(instructions, warmup=warmup)

        slow = _machine(policy, bench)
        slow.event_horizon = False
        stats_slow = slow.run(instructions, warmup=warmup)
        return fast, stats_fast, slow, stats_slow

    def test_identical_stats_baseline(self):
        fast, sf, slow, ss = self._pair("baseline")
        assert sf.to_dict() == ss.to_dict()
        assert fast.cycle == slow.cycle

    def test_identical_stats_pdip(self):
        fast, sf, slow, ss = self._pair("pdip_44", bench="tatp")
        assert sf.to_dict() == ss.to_dict()
        assert fast.cycle == slow.cycle

    def test_fast_path_actually_skips(self):
        fast, _, slow, _ = self._pair("baseline")
        assert fast.fast_forwarded_cycles > 0
        assert fast.fast_forwards > 0
        assert slow.fast_forwarded_cycles == 0
        # every skipped cycle is a per-cycle step the slow run performed
        assert fast.cycle == slow.cycle

    def test_skip_accounting_consistent(self):
        fast, _, _, _ = self._pair("baseline")
        # each jump skipped at least one cycle
        assert fast.fast_forwarded_cycles >= fast.fast_forwards


class TestProbeInteraction:
    def test_probe_disables_skipping(self):
        m = _machine()
        seen = []
        m.probe = lambda machine: seen.append(machine.cycle)
        m.run(2000, warmup=0)
        assert m.fast_forwarded_cycles == 0
        # the probe saw every cycle exactly once, in order
        assert seen == list(range(m.cycle))

    def test_probe_stats_unchanged(self):
        a = _machine()
        stats_a = a.run(2000, warmup=0)
        b = _machine()
        b.probe = lambda machine: None
        stats_b = b.run(2000, warmup=0)
        assert stats_a.to_dict() == stats_b.to_dict()

    def test_probe_coarse_keeps_skipping(self):
        m = _machine()
        observations = []
        m.probe = lambda machine: observations.append(machine.cycle)
        m.probe_coarse = True
        stats = m.run(2000, warmup=0)

        reference = _machine()
        stats_ref = reference.run(2000, warmup=0)
        # coarse mode must not perturb simulation results …
        assert stats.to_dict() == stats_ref.to_dict()
        # … while still fast-forwarding,
        assert m.fast_forwarded_cycles > 0
        # with one observation per stepped cycle or jump (strictly
        # increasing cycle numbers, fewer than total cycles)
        assert observations == sorted(observations)
        assert len(observations) == m.cycle - m.fast_forwarded_cycles \
            + m.fast_forwards

    def test_step_equals_inlined_loop(self):
        """Public step() must stay in lockstep with run()'s inlined copy."""
        layout = generate_layout(SMALL, seed=2)
        a = Machine(layout, SMALL, seed=3)
        a.event_horizon = False
        stats_a = a.run(1500, warmup=0)

        b = Machine(layout, SMALL, seed=3)
        while b.backend.retired_instructions < 1500:
            b.step()
        assert a.cycle == b.cycle
        assert stats_a.cycles == a.cycle
        assert (b.backend.retired_instructions
                == a.backend.retired_instructions)

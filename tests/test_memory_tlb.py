"""Tests for the optional instruction TLB."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.tlb import LINES_PER_PAGE, InstructionTLB


class TestTLB:
    def test_first_access_misses(self):
        tlb = InstructionTLB(entries=8, assoc=2, miss_latency=25)
        assert tlb.translate(0) == 25
        assert tlb.misses == 1

    def test_same_page_hits(self):
        tlb = InstructionTLB(entries=8, assoc=2, miss_latency=25)
        tlb.translate(0)
        assert tlb.translate(1) == 0          # same page
        assert tlb.translate(LINES_PER_PAGE - 1) == 0
        assert tlb.misses == 1

    def test_new_page_misses(self):
        tlb = InstructionTLB(entries=8, assoc=2, miss_latency=25)
        tlb.translate(0)
        assert tlb.translate(LINES_PER_PAGE) == 25

    def test_capacity_eviction(self):
        tlb = InstructionTLB(entries=2, assoc=1, miss_latency=10)
        # pages 0 and num_sets map to set 0
        tlb.translate(0)
        tlb.translate(tlb.num_sets * LINES_PER_PAGE)
        assert tlb.translate(0) == 10  # evicted

    def test_lru_within_set(self):
        tlb = InstructionTLB(entries=4, assoc=2, miss_latency=10)
        sets = tlb.num_sets
        pages = [0, sets, 2 * sets]  # all map to set 0
        tlb.translate(pages[0] * LINES_PER_PAGE)
        tlb.translate(pages[1] * LINES_PER_PAGE)
        tlb.translate(pages[0] * LINES_PER_PAGE)  # refresh
        tlb.translate(pages[2] * LINES_PER_PAGE)  # evicts pages[1]
        assert tlb.translate(pages[0] * LINES_PER_PAGE) == 0
        assert tlb.translate(pages[1] * LINES_PER_PAGE) == 10

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            InstructionTLB(entries=10, assoc=4)

    def test_miss_rate(self):
        tlb = InstructionTLB(entries=8, assoc=2)
        tlb.translate(0)
        tlb.translate(0)
        assert tlb.miss_rate() == pytest.approx(0.5)


class TestHierarchyIntegration:
    def test_disabled_by_default(self):
        h = MemoryHierarchy(config=HierarchyConfig())
        assert h.itlb is None

    def test_walk_adds_latency(self):
        base = MemoryHierarchy(config=HierarchyConfig())
        with_tlb = MemoryHierarchy(
            config=HierarchyConfig(itlb_enabled=True, itlb_miss_latency=25))
        r0 = base.fetch_instruction(100, cycle=0)
        r1 = with_tlb.fetch_instruction(100, cycle=0)
        assert r1.ready_cycle == r0.ready_cycle + 25

    def test_hit_after_walk_fast(self):
        h = MemoryHierarchy(
            config=HierarchyConfig(itlb_enabled=True, itlb_miss_latency=25))
        first = h.fetch_instruction(100, cycle=0)
        r = h.fetch_instruction(100, cycle=first.ready_cycle + 1)
        assert r.l1_hit
        assert (r.ready_cycle
                == first.ready_cycle + 1 + h.config.l1_hit_latency)

    def test_machine_runs_with_itlb(self):
        from repro.simulator.config import MachineConfig
        from repro.simulator.policies import build_machine, get_policy
        from repro.workloads.generator import generate_layout
        from repro.workloads.profiles import get_profile

        profile = get_profile("noop")
        layout = generate_layout(profile, seed=1)
        cfg = MachineConfig(hierarchy=HierarchyConfig(itlb_enabled=True))
        machine = build_machine(layout, profile, get_policy("baseline"),
                                config=cfg, seed=1)
        stats = machine.run(4000, warmup=800)
        assert machine.hierarchy.itlb.accesses > 0
        assert stats.instructions >= 4000

"""Golden-stats regression anchors.

Three (benchmark, policy, seed) cells with their **full**
:class:`SimulationStats` dict pinned, captured from the pre-optimization
per-cycle reference implementation. Any change to simulation semantics —
including a bug in the event-horizon fast path, which is ON by default
in these runs — trips these comparisons field-by-field.

Every cell runs under **both** simulation cores (``backend="ref"`` and
``backend="fast"``): the flat-array core's contract is bit-identical
stats, so the same goldens pin both implementations. The backend is
pinned via :class:`MachineConfig` in each parametrization — never via
``REPRO_BACKEND``, which ``tests/conftest.py`` strips from the
environment so an ambient override can't silently retarget these runs.

If a *deliberate* modelling change invalidates them, regenerate with::

    PYTHONPATH=src python -c "
    from repro.simulator.runner import run_benchmark
    s = run_benchmark('tatp', 'pdip_44', instructions=30000, warmup=6000,
                      seed=1, use_cache=False)
    print(s.to_dict())"
"""

from __future__ import annotations

import pytest

from repro.simulator.config import MachineConfig
from repro.simulator.runner import run_benchmark

GOLDEN = [
    ("tatp", "pdip_44", 1, 30000, 6000, {
        'cycles': 30346,
        'decode_starvation_cycles': 7147,
        'extra': {},
        'fec_covered_events': 0,
        'fec_distinct_lines': 51,
        'fec_events': 41,
        'fec_high_cost_backend_events': 26,
        'fec_high_cost_events': 53,
        'fec_starvation_cycles': 4966,
        'instructions': 30000,
        'l1i_accesses': 22470,
        'l1i_misses': 210,
        'l2_data_misses': 1973,
        'l2_inst_misses': 135,
        'l3_misses': 1985,
        'pdip_inserts': 27,
        'pdip_triggers_last_taken': 0,
        'pdip_triggers_mispredict': 8144,
        'prefetch_late': 2,
        'prefetch_useful': 4,
        'prefetch_useless': 1,
        'prefetches_dropped': 0,
        'prefetches_issued': 7,
        'resteers': 418,
        'resteers_btb_miss': 132,
        'resteers_cond': 150,
        'resteers_indirect': 136,
        'resteers_return': 0,
        'retired_distinct_lines': 163,
        'slots_backend_bound': 222694,
        'slots_bad_speculation': 24908,
        'slots_frontend_bound': 86257,
        'slots_retiring': 30293,
        'slots_total': 364152,
        'wrong_path_blocks': 13373,
    }),
    ("dotty", "baseline", 2, 30000, 6000, {
        'cycles': 35453,
        'decode_starvation_cycles': 10567,
        'extra': {},
        'fec_covered_events': 0,
        'fec_distinct_lines': 94,
        'fec_events': 84,
        'fec_high_cost_backend_events': 63,
        'fec_high_cost_events': 114,
        'fec_starvation_cycles': 8244,
        'instructions': 30009,
        'l1i_accesses': 21934,
        'l1i_misses': 729,
        'l2_data_misses': 2463,
        'l2_inst_misses': 431,
        'l3_misses': 2424,
        'pdip_inserts': 0,
        'pdip_triggers_last_taken': 0,
        'pdip_triggers_mispredict': 0,
        'prefetch_late': 0,
        'prefetch_useful': 0,
        'prefetch_useless': 0,
        'prefetches_dropped': 0,
        'prefetches_issued': 0,
        'resteers': 453,
        'resteers_btb_miss': 203,
        'resteers_cond': 185,
        'resteers_indirect': 65,
        'resteers_return': 0,
        'retired_distinct_lines': 325,
        'slots_backend_bound': 245832,
        'slots_bad_speculation': 21883,
        'slots_frontend_bound': 127826,
        'slots_retiring': 29895,
        'slots_total': 425436,
        'wrong_path_blocks': 12974,
    }),
    ("kafka", "eip_46", 3, 30000, 6000, {
        'cycles': 21372,
        'decode_starvation_cycles': 11365,
        'extra': {},
        'fec_covered_events': 3,
        'fec_distinct_lines': 95,
        'fec_events': 85,
        'fec_high_cost_backend_events': 77,
        'fec_high_cost_events': 89,
        'fec_starvation_cycles': 8800,
        'instructions': 30011,
        'l1i_accesses': 24290,
        'l1i_misses': 466,
        'l2_data_misses': 789,
        'l2_inst_misses': 256,
        'l3_misses': 1045,
        'pdip_inserts': 0,
        'pdip_triggers_last_taken': 0,
        'pdip_triggers_mispredict': 0,
        'prefetch_late': 3,
        'prefetch_useful': 17,
        'prefetch_useless': 44,
        'prefetches_dropped': 8,
        'prefetches_issued': 78,
        'resteers': 436,
        'resteers_btb_miss': 247,
        'resteers_cond': 82,
        'resteers_indirect': 107,
        'resteers_return': 0,
        'retired_distinct_lines': 311,
        'slots_backend_bound': 58665,
        'slots_bad_speculation': 29728,
        'slots_frontend_bound': 137787,
        'slots_retiring': 30284,
        'slots_total': 256464,
        'wrong_path_blocks': 14769,
    }),
]


@pytest.mark.parametrize("backend", ["ref", "fast"])
@pytest.mark.parametrize(
    "bench,policy,seed,instructions,warmup,want", GOLDEN,
    ids=["%s-%s-s%d" % (b, p, s) for b, p, s, _, _, _ in GOLDEN])
def test_golden_stats(bench, policy, seed, instructions, warmup, want,
                      backend):
    # the backend is pinned through the config (never the environment) so
    # each parametrization is guaranteed to exercise the core it names
    config = MachineConfig(backend=backend)
    stats = run_benchmark(bench, policy, instructions=instructions,
                          warmup=warmup, seed=seed, config=config,
                          use_cache=False)
    got = stats.to_dict()
    assert got == want, {
        k: (want.get(k), got.get(k))
        for k in set(want) | set(got) if want.get(k) != got.get(k)
    }

"""Tests for the content-addressed result store.

Covers the acceptance scenario of the service subsystem: a sweep run
twice against the same store performs **zero** simulations the second
time and returns bit-identical stats; plus the store's own contracts —
content-addressed blob dedup, get-or-compute, LRU eviction + blob GC,
and the pinned golden-cell digest that locks the canonical cell key.
"""

from __future__ import annotations

import json

import pytest

from repro.service.store import STORE_SCHEMA_VERSION, ResultStore, store_from_env
from repro.simulator import cache as result_cache
from repro.simulator import runner as runner_mod
from repro.simulator.runner import run_benchmark, run_suite_parallel
from repro.simulator.stats import SimulationStats

#: canonical key of the golden cell pinned in tests/test_golden_stats.py
#: (tatp / pdip_44 / seed 1 / 30000 instr / 6000 warmup). If this moves,
#: every existing store and cache entry is invalidated — bump
#: ``repro.simulator.cache.RUN_KEY_VERSION`` deliberately, never by
#: accident.
GOLDEN_CELL_KEY = "88832e4e37247b5fd87a9ad35e1bcf85b2559118"


def make_stats(instructions=1000, cycles=500, **extra):
    stats = SimulationStats()
    stats.instructions = instructions
    stats.cycles = cycles
    for name, value in extra.items():
        setattr(stats, name, value)
    return stats


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store") as s:
        yield s


@pytest.fixture
def no_local_cache(tmp_path, monkeypatch):
    """Isolate + disable the file cache so only the store can hit."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")


class TestCellKey:
    def test_golden_cell_key_pinned(self):
        key = ResultStore.cell_key("tatp", "pdip_44", 30000, 6000, seed=1)
        assert key == GOLDEN_CELL_KEY

    def test_matches_run_key(self):
        from repro.simulator.policies import get_policy

        assert ResultStore.cell_key("noop", "baseline", 100, 10, seed=2) == \
            result_cache.run_key("noop", get_policy("baseline"), 100, 10, 2,
                                 None)


class TestPutGet:
    def test_roundtrip_bit_identical(self, store):
        stats = make_stats(30000, 31234, l1i_misses=77)
        store.put("k1", stats, meta={"benchmark": "noop",
                                     "policy": "baseline", "seed": 1})
        loaded = store.get("k1")
        assert loaded is not None
        assert loaded.to_dict() == stats.to_dict()

    def test_miss_returns_none(self, store):
        assert store.get("missing") is None
        assert "missing" not in store

    def test_contains_and_len(self, store):
        assert len(store) == 0
        store.put("k1", make_stats())
        assert "k1" in store
        assert len(store) == 1

    def test_get_bumps_hit_counter(self, store):
        store.put("k1", make_stats())
        store.get("k1")
        store.get("k1")
        assert store.get_row("k1")["hits"] == 2

    def test_meta_row_lifted_and_preserved(self, store):
        store.put("k1", make_stats(), meta={
            "benchmark": "tatp", "policy": "pdip_44", "seed": 3,
            "instructions": 30000, "warmup": 6000, "wall_time": 1.5,
        })
        row = store.get_row("k1")
        assert row["benchmark"] == "tatp"
        assert row["policy"] == "pdip_44"
        assert row["seed"] == 3
        assert row["manifest"]["wall_time"] == 1.5

    def test_telemetry_rides_along(self, store):
        store.put("k1", make_stats(), telemetry={"events": 42})
        assert store.get_telemetry("k1") == {"events": 42}
        assert store.get_telemetry("missing") is None

    def test_put_without_telemetry_keeps_existing(self, store):
        store.put("k1", make_stats(), telemetry={"events": 42})
        store.put("k1", make_stats())
        assert store.get_telemetry("k1") == {"events": 42}

    def test_torn_blob_reported_as_miss(self, store):
        store.put("k1", make_stats())
        digest = store.get_row("k1")["stats_blob"]
        store._blob_path(digest).unlink()
        assert store.get("k1") is None
        assert "k1" not in store  # dangling row was dropped


class TestContentAddressing:
    def test_identical_stats_share_one_blob(self, store):
        store.put("k1", make_stats(1000, 500))
        store.put("k2", make_stats(1000, 500))
        assert len(store) == 2
        assert len(list(store.blob_dir.glob("*/*.json"))) == 1

    def test_different_stats_get_distinct_blobs(self, store):
        store.put("k1", make_stats(1000, 500))
        store.put("k2", make_stats(1000, 501))
        assert len(list(store.blob_dir.glob("*/*.json"))) == 2

    def test_blob_is_canonical_json(self, store):
        stats = make_stats(1000, 500)
        digest = store.put("k1", stats)
        with open(store._blob_path(digest)) as fh:
            assert json.load(fh) == stats.to_dict()


class TestGetOrCompute:
    def test_computes_once(self, store):
        calls = []

        def compute():
            calls.append(1)
            return make_stats(1, 2)

        first, hit1 = store.get_or_compute("k", compute)
        second, hit2 = store.get_or_compute("k", compute)
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        assert first.to_dict() == second.to_dict()


class TestMaintenance:
    def test_info_counts(self, store):
        store.put("k1", make_stats(1, 1))
        store.put("k2", make_stats(2, 2))
        info = store.info()
        assert info["rows"] == 2
        assert info["blobs"] == 2
        assert info["schema"] == STORE_SCHEMA_VERSION
        assert info["blob_bytes"] > 0

    def test_prune_max_rows_evicts_lru(self, store):
        for i in range(4):
            store.put("k%d" % i, make_stats(i + 1, 1))
        store.get("k0")  # freshen k0: k1 is now the LRU row
        removed = store.prune(max_rows=3)
        assert removed["rows"] == 1
        assert "k0" in store
        assert "k1" not in store

    def test_prune_collects_unreferenced_blobs(self, store):
        store.put("k1", make_stats(1, 1))
        store.put("k2", make_stats(2, 2))
        removed = store.prune(max_rows=1)
        assert removed == {"rows": 1, "blobs": 1}
        assert len(list(store.blob_dir.glob("*/*.json"))) == 1

    def test_gc_keeps_shared_blob(self, store):
        store.put("k1", make_stats(1, 1))
        store.put("k2", make_stats(1, 1))  # same content
        store.prune(max_rows=1)
        assert len(list(store.blob_dir.glob("*/*.json"))) == 1
        assert store.get("k1") is not None or store.get("k2") is not None


class TestStoreFromEnv:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert store_from_env() is None

    def test_set_opens_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s"))
        s = store_from_env()
        assert s is not None
        assert (tmp_path / "s" / "store.sqlite").exists()
        s.close()


class TestRunnerIntegration:
    def test_run_benchmark_writes_and_reads_store(self, store,
                                                  no_local_cache):
        a = run_benchmark("noop", "baseline", instructions=2000, warmup=300,
                          store=store)
        assert len(store) == 1
        key = ResultStore.cell_key("noop", "baseline", 2000, 300)
        assert store.get_row(key)["benchmark"] == "noop"

        def boom(*_args, **_kw):  # pragma: no cover - must not run
            raise AssertionError("second run must not simulate")

        # REPRO_NO_CACHE=1 forces use_cache=False semantics for the file
        # cache path only when callers pass use_cache=True; here we prove
        # the *store* serves the re-run by making simulation impossible.
        from repro.simulator import policies as policies_mod
        original = policies_mod.build_machine
        policies_mod.build_machine = boom
        try:
            b = run_benchmark("noop", "baseline", instructions=2000,
                              warmup=300, store=store)
        finally:
            policies_mod.build_machine = original
        assert b.to_dict() == a.to_dict()

    def test_sweep_twice_zero_simulations(self, store, no_local_cache,
                                          monkeypatch):
        policies = ["baseline", "pdip_44"]
        first = run_suite_parallel(policies, benchmarks=["noop"],
                                   instructions=2000, warmup=300, jobs=1,
                                   store=store)
        assert len(store) == 2

        def boom(cell):  # pragma: no cover - must not run
            raise AssertionError("store re-run must not simulate: %r"
                                 % (cell,))

        monkeypatch.setattr(runner_mod, "_simulate_cell", boom)
        second = run_suite_parallel(policies, benchmarks=["noop"],
                                    instructions=2000, warmup=300, jobs=1,
                                    store=store)
        for policy in policies:
            assert (second["noop"][policy].to_dict()
                    == first["noop"][policy].to_dict())

    def test_store_hit_recorded_in_manifest(self, store, no_local_cache,
                                            monkeypatch):
        from repro.simulator.manifest import RunManifest

        run_suite_parallel(["baseline"], benchmarks=["noop"],
                           instructions=2000, warmup=300, jobs=1,
                           store=store)
        monkeypatch.setattr(runner_mod, "_simulate_cell", lambda cell: (
            (_ for _ in ()).throw(AssertionError("must not simulate"))))
        manifest = RunManifest(label="again")
        run_suite_parallel(["baseline"], benchmarks=["noop"],
                           instructions=2000, warmup=300, jobs=1,
                           store=store, manifest=manifest)
        (record,) = manifest.cells
        assert record.worker == "store"
        assert record.cache_hit is True

"""Tests for the SVG chart renderer."""

import xml.dom.minidom

import pytest

from repro.reporting_svg import (
    SVGCanvas,
    _axis_ticks,
    grouped_bar_svg,
    line_svg,
)


def valid_xml(svg: str) -> bool:
    xml.dom.minidom.parseString(svg)
    return True


class TestAxisTicks:
    def test_covers_range(self):
        ticks = _axis_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] >= 10.0 - _axis_ticks(0.0, 10.0)[1]

    def test_degenerate_range(self):
        assert _axis_ticks(5.0, 5.0)

    def test_negative_range(self):
        ticks = _axis_ticks(-3.0, 4.0)
        assert any(t <= 0 for t in ticks)
        assert any(t > 0 for t in ticks)


class TestCanvas:
    def test_render_is_svg(self):
        c = SVGCanvas(100, 50)
        c.rect(0, 0, 10, 10, "#fff")
        c.line(0, 0, 10, 10)
        c.circle(5, 5, 2, "#000")
        c.polyline([(0, 0), (5, 5)], "#123")
        c.text(1, 1, "hi & <bye>")
        svg = c.render()
        assert svg.startswith("<svg")
        assert valid_xml(svg)

    def test_text_escaped(self):
        c = SVGCanvas(10, 10)
        c.text(0, 0, "<script>")
        assert "<script>" not in c.render()


class TestGroupedBars:
    def test_valid_svg(self):
        svg = grouped_bar_svg({"a": {"x": 1.0, "y": -2.0},
                               "b": {"x": 3.0}}, title="T")
        assert valid_xml(svg)
        assert "T" in svg

    def test_empty_series(self):
        assert valid_xml(grouped_bar_svg({}))

    def test_all_categories_labeled(self):
        svg = grouped_bar_svg({"a": {"bench1": 1.0, "bench2": 2.0}})
        assert "bench1" in svg and "bench2" in svg

    def test_legend_present(self):
        svg = grouped_bar_svg({"seriesA": {"x": 1.0}})
        assert "seriesA" in svg


class TestLines:
    def test_valid_svg(self):
        svg = line_svg({"s": [(0, 0), (1, 2), (2, 1)]}, title="L",
                       xlabel="x", ylabel="y")
        assert valid_xml(svg)
        assert "polyline" in svg

    def test_empty(self):
        assert valid_xml(line_svg({}))

    def test_markers(self):
        svg = line_svg({"s": [(0, 0), (1, 1)]})
        assert "circle" in svg
        no_markers = line_svg({"s": [(0, 0), (1, 1)]}, markers=False)
        assert "circle" not in no_markers


class TestSpeedupBarsHelper:
    def test_builds_series_from_result(self):
        from repro.experiments.common import speedup_bars_svg

        result = {
            "benchmarks": ["a", "b"],
            "speedups": {"a": {"p1": 1.0, "p2": 2.0},
                         "b": {"p1": -0.5, "p2": 0.1}},
        }
        svg = speedup_bars_svg(result, ("p1", "p2"),
                               {"p1": "Policy One", "p2": "Policy Two"},
                               "T")
        assert valid_xml(svg)
        assert "Policy One" in svg and "T" in svg

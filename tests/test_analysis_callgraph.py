"""Call-graph unit tests: resolution surface, cycles, silence on failure.

Each test builds a tiny package under ``tmp_path`` and inspects the
graph directly — the concurrency rules are tested separately; here we
pin the resolver semantics they depend on.
"""

from textwrap import dedent

from repro.analysis.callgraph import build_callgraph
from repro.analysis.engine import discover


def build(tmp_path, files):
    merged = {"pkg/__init__.py": ""}
    merged.update(files)
    for rel, source in merged.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    project = discover([tmp_path], root=tmp_path)
    return build_callgraph(project)


def callees(graph, qname):
    fn = graph.function(qname)
    assert fn is not None, f"no function {qname!r} in graph"
    return [(site.callee, site.external) for site in fn.calls]


class TestNameResolution:
    def test_cross_module_from_import(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": "def helper():\n    pass\n",
            "pkg/b.py": """\
                from pkg.a import helper

                def caller():
                    helper()
            """,
        })
        assert callees(graph, "pkg.b:caller") == [("pkg.a:helper", None)]

    def test_reexport_chain_is_followed(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/impl.py": "def real():\n    pass\n",
            "pkg/shim.py": "from pkg.impl import real\n",
            "pkg/use.py": """\
                from pkg.shim import real

                def caller():
                    real()
            """,
        })
        assert callees(graph, "pkg.use:caller") == [("pkg.impl:real", None)]

    def test_relative_import(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": "def helper():\n    pass\n",
            "pkg/b.py": """\
                from .a import helper

                def caller():
                    helper()
            """,
        })
        assert callees(graph, "pkg.b:caller") == [("pkg.a:helper", None)]

    def test_module_alias_attribute_call(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": "def helper():\n    pass\n",
            "pkg/b.py": """\
                import pkg.a

                def caller():
                    pkg.a.helper()
            """,
        })
        assert callees(graph, "pkg.b:caller") == [("pkg.a:helper", None)]

    def test_external_and_builtin_calls(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                import time

                def caller():
                    time.sleep(1)
                    open("x")
            """,
        })
        assert callees(graph, "pkg.a:caller") == [
            (None, "time.sleep"), (None, "open")]

    def test_unresolvable_is_silent(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                def caller(mystery):
                    mystery.frobnicate()
                    (lambda: 1)()
            """,
        })
        assert callees(graph, "pkg.a:caller") == []


class TestMethodResolution:
    def test_self_method_and_inheritance(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def go(self):
                        self.shared()
            """,
        })
        assert callees(graph, "pkg.a:Child.go") == [
            ("pkg.a:Base.shared", None)]

    def test_super_call(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                class Base:
                    def go(self):
                        pass

                class Child(Base):
                    def go(self):
                        super().go()
            """,
        })
        assert callees(graph, "pkg.a:Child.go") == [("pkg.a:Base.go", None)]

    def test_cross_module_base_class(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/base.py": """\
                class Base:
                    def shared(self):
                        pass
            """,
            "pkg/child.py": """\
                from pkg.base import Base

                class Child(Base):
                    def go(self):
                        self.shared()
            """,
        })
        assert callees(graph, "pkg.child:Child.go") == [
            ("pkg.base:Base.shared", None)]

    def test_attr_type_from_init_ctor(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/store.py": """\
                class Store:
                    def close(self):
                        pass
            """,
            "pkg/svc.py": """\
                from pkg.store import Store

                class Service:
                    def __init__(self):
                        self.store = Store()

                    def stop(self):
                        self.store.close()
            """,
        })
        assert callees(graph, "pkg.svc:Service.stop") == [
            ("pkg.store:Store.close", None)]

    def test_optional_annotation_wins_over_init_none(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/store.py": """\
                class Store:
                    def close(self):
                        pass
            """,
            "pkg/svc.py": """\
                from typing import Optional

                from pkg.store import Store

                class Service:
                    def start(self):
                        self.store: Optional[Store] = None

                    def stop(self):
                        self.store.close()
            """,
        })
        assert callees(graph, "pkg.svc:Service.stop") == [
            ("pkg.store:Store.close", None)]

    def test_annotated_param_and_local_ctor(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/store.py": """\
                class Store:
                    def close(self):
                        pass
            """,
            "pkg/use.py": """\
                from pkg.store import Store

                def direct(store: Store):
                    store.close()

                def local():
                    s = Store()
                    s.close()
            """,
        })
        assert callees(graph, "pkg.use:direct") == [
            ("pkg.store:Store.close", None)]
        # the constructor call itself is a site tagged class:<qname>
        assert callees(graph, "pkg.use:local") == [
            (None, "class:pkg.store:Store"),
            ("pkg.store:Store.close", None),
        ]


class TestExternalOrigins:
    def test_factory_result_methods_are_tagged(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                import sqlite3

                def chained():
                    sqlite3.connect(":memory:").execute("select 1")

                def stored():
                    db = sqlite3.connect(":memory:")
                    db.execute("select 1")
            """,
        })
        # the inner factory call is a site of its own (it executes
        # too); the chained method is tagged with the factory origin
        assert callees(graph, "pkg.a:chained") == [
            (None, "sqlite3.connect.execute"),
            (None, "sqlite3.connect"),
        ]
        assert callees(graph, "pkg.a:stored") == [
            (None, "sqlite3.connect"),
            (None, "sqlite3.connect.execute"),
        ]

    def test_withitem_typing(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                def caller():
                    with open("x") as fh:
                        fh.read()
            """,
        })
        assert callees(graph, "pkg.a:caller") == [
            (None, "open"), (None, "open.read")]


class TestScopes:
    def test_nested_defs_are_separate_functions(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                import time

                def outer():
                    def inner():
                        time.sleep(1)
                    inner()
            """,
        })
        # outer's only call edge is to the nested def; the blocking
        # call belongs to inner's own FunctionInfo
        assert callees(graph, "pkg.a:outer") == [
            ("pkg.a:outer.<locals>.inner", None)]
        assert callees(graph, "pkg.a:outer.<locals>.inner") == [
            (None, "time.sleep")]

    def test_lambda_bodies_are_not_attributed(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                import time

                def caller(loop):
                    loop.run_in_executor(None, lambda: time.sleep(1))
            """,
        })
        # loop is untyped -> run_in_executor unresolved; the lambda's
        # time.sleep must not leak into caller's call list
        assert callees(graph, "pkg.a:caller") == []

    def test_recursion_and_mutual_recursion_build(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                def ping():
                    pong()

                def pong():
                    ping()

                def solo():
                    solo()
            """,
        })
        assert callees(graph, "pkg.a:ping") == [("pkg.a:pong", None)]
        assert callees(graph, "pkg.a:pong") == [("pkg.a:ping", None)]
        assert callees(graph, "pkg.a:solo") == [("pkg.a:solo", None)]

    def test_site_for_maps_ast_nodes(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/a.py": """\
                def helper():
                    pass

                def caller():
                    helper()
            """,
        })
        fn = graph.function("pkg.a:caller")
        site = fn.calls[0]
        assert graph.site_for(site.node) is site

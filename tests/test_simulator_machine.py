"""Tests for the cycle-level machine."""

import pytest

from repro.simulator.config import MachineConfig
from repro.simulator.machine import Machine
from repro.simulator.policies import build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

SMALL = WorkloadProfile(name="machine-test", num_functions=80,
                        num_handlers=10, num_leaves=12, call_depth=3,
                        backend_stall_prob=0.05)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(SMALL, seed=3)


def run_machine(layout, policy="baseline", n=8000, warmup=2000, seed=3,
                config=None):
    machine = build_machine(layout, SMALL, get_policy(policy),
                            config=config, seed=seed)
    stats = machine.run(n, warmup=warmup)
    return machine, stats


class TestBasicExecution:
    def test_retires_requested_instructions(self, layout):
        _, stats = run_machine(layout, n=5000, warmup=1000)
        assert stats.instructions >= 5000
        assert stats.cycles > 0

    def test_ipc_plausible(self, layout):
        _, stats = run_machine(layout)
        assert 0.1 < stats.ipc <= 12.0

    def test_deterministic(self, layout):
        _, a = run_machine(layout, seed=9)
        _, b = run_machine(layout, seed=9)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.l1i_misses == b.l1i_misses
        assert a.resteers == b.resteers

    def test_seed_changes_outcome(self, layout):
        _, a = run_machine(layout, seed=9)
        _, b = run_machine(layout, seed=10)
        assert a.cycles != b.cycles

    def test_warmup_excluded_from_stats(self, layout):
        _, warm = run_machine(layout, n=4000, warmup=4000)
        assert warm.instructions == pytest.approx(4000, abs=64)


class TestTopDown:
    def test_slots_partition(self, layout):
        _, stats = run_machine(layout)
        total = (stats.slots_retiring + stats.slots_bad_speculation
                 + stats.slots_frontend_bound + stats.slots_backend_bound)
        assert total == stats.slots_total

    def test_fractions_sum_to_one(self, layout):
        _, stats = run_machine(layout)
        assert sum(stats.topdown.values()) == pytest.approx(1.0)

    def test_retiring_matches_ipc(self, layout):
        _, stats = run_machine(layout)
        cfg = MachineConfig()
        expected = stats.ipc / cfg.decode_width
        assert stats.topdown["retiring"] == pytest.approx(expected, rel=0.1)


class TestResteerBehaviour:
    def test_resteers_happen(self, layout):
        _, stats = run_machine(layout)
        assert stats.resteers > 0

    def test_resteer_kinds_partition(self, layout):
        _, stats = run_machine(layout)
        assert (stats.resteers_btb_miss + stats.resteers_cond
                + stats.resteers_indirect + stats.resteers_return
                == stats.resteers)

    def test_wrong_path_fetched(self, layout):
        _, stats = run_machine(layout)
        assert stats.wrong_path_blocks > 0
        assert stats.slots_bad_speculation > 0

    def test_deeper_resteer_latency_costs_ipc(self, layout):
        _, fast = run_machine(layout,
                              config=MachineConfig(exec_resteer_latency=8))
        _, slow = run_machine(layout,
                              config=MachineConfig(exec_resteer_latency=30))
        assert slow.ipc < fast.ipc


class TestFrontEndPressure:
    def test_starvation_recorded(self, layout):
        _, stats = run_machine(layout)
        assert stats.decode_starvation_cycles > 0

    def test_fec_events_found(self, layout):
        machine, stats = run_machine(layout)
        assert stats.fec_events > 0
        assert machine.fec.fec_lines

    def test_bigger_l1i_reduces_misses(self, layout):
        _, small = run_machine(layout)
        _, big = run_machine(layout, policy="2x_il1")
        assert big.l1i_misses < small.l1i_misses

    def test_deeper_ftq_not_worse(self, layout):
        _, shallow = run_machine(layout, config=MachineConfig(ftq_depth=4))
        _, deep = run_machine(layout, config=MachineConfig(ftq_depth=32))
        assert deep.ipc >= shallow.ipc * 0.98


class TestDataStream:
    def test_data_accesses_happen(self, layout):
        _, stats = run_machine(layout)
        assert stats.l2_data_misses > 0

    def test_no_data_stream_profile(self):
        quiet = SMALL.scaled(name="quiet", data_access_prob=0.0)
        lay = generate_layout(quiet, seed=3)
        machine = build_machine(lay, quiet, get_policy("baseline"), seed=3)
        stats = machine.run(3000, warmup=500)
        assert stats.l2_data_misses == 0


class TestRunGuards:
    def test_max_cycles_guard(self, layout):
        machine = build_machine(layout, SMALL, get_policy("baseline"), seed=3)
        with pytest.raises(RuntimeError):
            machine.run(10_000_000, warmup=0, max_cycles=100)

"""Tests for the telemetry handle, ring-buffer recorder, and registry."""

import pytest

from repro.telemetry.events import EVENT_KINDS, STAGE_OF_KIND, validate_args
from repro.telemetry.handle import NULL_RECORDER, NullRecorder, telemetry_enabled
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestNullHandle:
    def test_disabled_and_silent(self):
        assert NULL_RECORDER.enabled is False
        # emit must be a no-op, never raise, even with junk kinds
        NULL_RECORDER.emit("not-a-kind", 0, junk=1)

    def test_class_level_flag(self):
        # the hot-path guard reads a class constant, not instance state
        assert "enabled" not in getattr(NullRecorder, "__slots__", ("enabled",))
        assert NullRecorder.enabled is False

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled()


class TestRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder(capacity=16)
        rec.emit("pq_issue", 5, line=1)
        rec.emit("pq_issue", 7, line=2)
        assert [e[:2] for e in rec.events()] == [(0, 5), (1, 7)]
        assert rec.events()[0][2] == "pq_issue"
        assert rec.events()[0][3] == {"line": 1}

    def test_ring_overflow_keeps_tail(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            rec.emit("pq_issue", i, line=i)
        assert len(rec) == 4
        assert rec.dropped == 6
        # the tail survives: seq 6..9
        assert [e[0] for e in rec.events()] == [6, 7, 8, 9]
        # offered accounting is exact despite eviction
        assert rec.seq == 10
        assert rec.kind_counts == {"pq_issue": 10}

    def test_sampling_is_deterministic_modulo(self):
        rec = TraceRecorder(capacity=100, sample_every=3)
        for i in range(9):
            rec.emit("pq_issue", i, line=i)
        # keeps seq 0, 3, 6 — a modulo, never an RNG draw
        assert [e[0] for e in rec.events()] == [0, 3, 6]
        assert rec.sampled_out == 6
        assert rec.seq == 9

    def test_unknown_kind_raises(self):
        rec = TraceRecorder(capacity=4)
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            rec.emit("tyop", 0)

    def test_validation_can_be_disabled(self):
        rec = TraceRecorder(capacity=4, validate=False)
        rec.emit("anything-goes", 0)
        assert len(rec) == 1

    def test_events_filter_by_kind(self):
        rec = TraceRecorder(capacity=16)
        rec.emit("pq_issue", 1, line=1)
        rec.emit("pq_drop", 2, line=2, reason="full")
        rec.emit("pq_issue", 3, line=3)
        assert [e[1] for e in rec.events("pq_issue")] == [1, 3]

    def test_clear_keeps_accounting(self):
        rec = TraceRecorder(capacity=16)
        rec.emit("pq_issue", 1, line=1)
        rec.clear()
        assert len(rec) == 0
        assert rec.seq == 1
        assert rec.kind_counts == {"pq_issue": 1}

    def test_summary_accounting(self):
        rec = TraceRecorder(capacity=2, sample_every=2)
        for i in range(8):
            rec.emit("pq_issue", i, line=i)
        summary = rec.summary()
        assert summary["events_offered"] == 8
        assert summary["events_sampled_out"] == 4
        assert summary["events_retained"] == 2
        assert summary["events_dropped_ring"] == 2
        assert summary["kind_counts"] == {"pq_issue": 8}
        # offered = retained + dropped + sampled_out, always
        assert (summary["events_offered"]
                == summary["events_retained"]
                + summary["events_dropped_ring"]
                + summary["events_sampled_out"])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)


class TestEventSchema:
    def test_every_kind_has_a_stage(self):
        assert set(EVENT_KINDS) == set(STAGE_OF_KIND)

    def test_validate_args_accepts_schema(self):
        validate_args("pq_drop", {"line": 1, "reason": "full"})

    def test_validate_args_rejects_unknown_arg(self):
        with pytest.raises(ValueError, match="does not take"):
            validate_args("pq_drop", {"line": 1, "speed": 9})

    def test_validate_args_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown telemetry event kind"):
            validate_args("bogus", {})

    def test_emit_sites_match_schema(self):
        # every kind the simulator emits must round-trip its documented
        # argument names through a validating recorder
        rec = TraceRecorder(capacity=len(EVENT_KINDS) + 1)
        for kind, (names, _desc) in EVENT_KINDS.items():
            rec.emit(kind, 0, **{name: 0 for name in names})
        assert len(rec) == len(EVENT_KINDS)


class TestRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("pq.issued")
        c.inc()
        c.inc(4)
        assert reg.counter("pq.issued") is c
        assert reg.snapshot() == {"pq.issued": 5}

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("ftq.depth").set(12)
        reg.gauge("ftq.depth").set(7)
        assert reg.snapshot() == {"ftq.depth": 7}

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1, 10))
        for v in (0, 1, 5, 10, 11, 1000):
            h.observe(v)
        snap = reg.snapshot()["lat"]
        assert snap["counts"] == [2, 2, 2]  # <=1, <=10, overflow
        assert snap["total"] == 6
        assert snap["sum"] == 1027.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert isinstance(reg.get("b"), Counter)
        assert isinstance(reg.get("a"), Gauge)
        assert reg.get("zzz") is None

    def test_handles_are_slotted(self):
        # metric handles sit on warm paths; no per-instance __dict__
        for cls in (Counter, Gauge, Histogram):
            assert not hasattr(cls("x"), "__dict__")

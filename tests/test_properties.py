"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.btb import BTB
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import FoldedHistory
from repro.core.pdip_table import PDIPTable
from repro.frontend.ftq import FTQ, FTQEntry
from repro.memory.cache import Cache
from repro.memory.replacement import EmissaryPolicy
from repro.utils import LINE_SIZE, derive_rng, line_of, lines_spanned
from repro.workloads.generator import generate_layout
from repro.workloads.layout import BasicBlock
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import PathWalker

lines = st.integers(min_value=0, max_value=1 << 34)
addrs = st.integers(min_value=0, max_value=1 << 40)


class TestAddressProperties:
    @given(addrs)
    def test_line_of_consistent_with_spans(self, addr):
        assert lines_spanned(addr, 1) == [line_of(addr)]

    @given(addrs, st.integers(min_value=1, max_value=4096))
    def test_spans_are_contiguous(self, addr, nbytes):
        span = lines_spanned(addr, nbytes)
        assert span == list(range(span[0], span[-1] + 1))

    @given(addrs, st.integers(min_value=1, max_value=4096))
    def test_span_length_bound(self, addr, nbytes):
        span = lines_spanned(addr, nbytes)
        assert len(span) <= nbytes // LINE_SIZE + 2


class TestFoldedHistoryProperties:
    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=2, max_value=16),
           st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=300))
    def test_pure_function_of_window(self, length, bits, stream):
        """After any update sequence, the folded value depends only on the
        last ``length`` bits."""
        fh = FoldedHistory(length, bits)
        window = [0] * length
        for b in stream:
            fh.update(b, window[0])
            window = window[1:] + [b]
        replay = FoldedHistory(length, bits)
        rwin = [0] * length
        for b in window:
            replay.update(b, rwin[0])
            rwin = rwin[1:] + [b]
        assert fh.value == replay.value

    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=2, max_value=16),
           st.lists(st.integers(min_value=0, max_value=1), max_size=300))
    def test_value_in_range(self, length, bits, stream):
        fh = FoldedHistory(length, bits)
        window = [0] * length
        for b in stream:
            fh.update(b, window[0])
            window = window[1:] + [b]
            assert 0 <= fh.value < (1 << bits)


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = Cache("p", size_kb=1, assoc=2, mshrs=64)  # 16 lines
        for i, line in enumerate(accesses):
            if cache.lookup(line, cycle=i) is None:
                cache.fill(line, ready_cycle=i)
        assert cache.resident_lines() <= 16
        for set_idx, ways in cache._sets.items():
            assert len(ways) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=300))
    def test_filled_line_is_probeable_until_evicted(self, accesses):
        cache = Cache("p", size_kb=1, assoc=2, mshrs=64)
        resident = set()
        for i, line in enumerate(accesses):
            if cache.lookup(line, cycle=i) is None:
                result = cache.fill(line, ready_cycle=i)
                resident.add(line)
                if result.evicted_line is not None:
                    resident.discard(result.evicted_line)
        for line in resident:
            assert cache.probe(line)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_emissary_respects_protected_cap(self, promote_seq, cap):
        policy = EmissaryPolicy(protected_ways=cap, promote_prob=1.0, seed=1)
        cache = Cache("p", size_kb=4, assoc=16, mshrs=64, policy=policy)
        for i, line in enumerate(promote_seq):
            if not cache.probe(line):
                cache.fill(line, ready_cycle=0)
            state = cache.get_state(line)
            policy.on_promote(state, cache.set_occupancy(line))
        for set_idx, ways in cache._sets.items():
            assert sum(1 for s in ways.values() if s.p_bit) <= cap


class TestBTBProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                              st.integers(min_value=0, max_value=1 << 20)),
                    min_size=1, max_size=400))
    def test_lookup_returns_last_inserted_target(self, inserts):
        btb = BTB(num_entries=1024, assoc=4)
        last = {}
        for pc, target in inserts:
            btb.insert(pc * 4, target, "direct")
            last[pc * 4] = target
        for pc, target in last.items():
            entry = btb.lookup(pc)
            if entry is not None:  # may have been evicted
                assert entry.target == target


class TestRASProperties:
    @given(st.lists(st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("pop"), st.just(0))), max_size=200))
    def test_matches_reference_within_depth(self, ops):
        """While the stack stays within depth, the RAS behaves exactly
        like a plain list."""
        depth = 16
        ras = ReturnAddressStack(depth=depth)
        reference = []
        overflowed = False
        for op, value in ops:
            if op == "push":
                ras.push(value)
                reference.append(value)
                if len(reference) > depth:
                    overflowed = True
            else:
                got = ras.pop()
                want = reference.pop() if reference else None
                if not overflowed:
                    assert got == want

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=100))
    def test_count_bounded(self, pushes):
        ras = ReturnAddressStack(depth=8)
        for v in pushes:
            ras.push(v)
            assert len(ras) <= 8


class TestPDIPTableProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4000),
                              st.integers(min_value=0, max_value=100_000)),
                    min_size=1, max_size=400))
    def test_lookup_lines_derive_from_inserts(self, pairs):
        """Every line a lookup returns must be an inserted target or a
        mask expansion within 4 blocks of one."""
        table = PDIPTable(assoc=4)
        inserted = set()
        for trigger, target in pairs:
            table.insert(trigger, target)
            inserted.add(target)
        for trigger, _ in pairs:
            for line, _type in table.lookup(trigger):
                assert any(line - d in inserted for d in range(0, 5))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4000),
                              st.integers(min_value=0, max_value=100_000)),
                    min_size=1, max_size=400))
    def test_occupancy_bounded(self, pairs):
        table = PDIPTable(assoc=4, num_sets=64)
        for trigger, target in pairs:
            table.insert(trigger, target)
        assert table.occupancy() <= 64 * 4

    @given(st.integers(min_value=0, max_value=4000),
           st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=20))
    def test_masked_lines_unique(self, trigger, targets):
        table = PDIPTable()
        for t in targets:
            table.insert(trigger, 5000 + t)
        lines = [line for line, _ in table.lookup(trigger)]
        assert len(lines) == len(set(lines))


class TestFTQProperties:
    @given(st.lists(st.sampled_from(["push", "pop", "flush"]), max_size=200))
    def test_fifo_semantics(self, ops):
        ftq = FTQ(depth=8)
        reference = []
        counter = 0
        for op in ops:
            if op == "push" and not ftq.full:
                block = BasicBlock(bid=counter, addr=counter * 64,
                                   num_instructions=1)
                ftq.push(FTQEntry(block=block, lines=[counter],
                                  enqueue_cycle=0))
                reference.append(counter)
                counter += 1
            elif op == "pop" and not ftq.empty:
                assert ftq.pop().block.bid == reference.pop(0)
            elif op == "flush":
                ftq.flush()
                reference.clear()
            assert len(ftq) == len(reference)
            assert len(ftq) <= 8


class TestWalkerProperties:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_walker_never_leaves_layout(self, seed):
        profile = WorkloadProfile(name="prop", num_functions=40,
                                  num_handlers=6, num_leaves=6, call_depth=2)
        layout = generate_layout(profile, seed=3)
        walker = PathWalker(layout, seed=seed)
        for _ in range(400):
            ev = walker.next_event()
            assert 0 <= ev.next_bid < layout.num_blocks
            assert ev.target_addr == layout.blocks[ev.next_bid].addr

"""Tests for the ASCII chart renderer."""

import pytest

from repro.reporting import hbar_chart, scatter_chart, stacked_pct_bar


class TestHBar:
    def test_renders_all_categories(self):
        text = hbar_chart({"a": {"x": 1.0, "y": 2.0}}, title="T")
        assert "x" in text and "y" in text and "T" in text

    def test_values_shown(self):
        text = hbar_chart({"a": {"x": 1.5}})
        assert "+1.50%" in text

    def test_legend(self):
        text = hbar_chart({"s1": {"x": 1.0}, "s2": {"x": 2.0}})
        assert "legend" in text
        assert "s1" in text and "s2" in text

    def test_negative_values_ok(self):
        text = hbar_chart({"a": {"x": -1.0, "y": 2.0}})
        assert "-1.00%" in text

    def test_empty(self):
        assert hbar_chart({}, title="E") == "E"

    def test_bar_length_proportional(self):
        text = hbar_chart({"a": {"small": 1.0, "big": 10.0}}, width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        small_bar = lines[0].count("#") if "small" in text.splitlines()[0] \
            else None
        # the big bar has more glyphs than the small one
        counts = [l.count("#") for l in lines]
        assert max(counts) > min(counts)


class TestScatter:
    def test_renders_grid(self):
        text = scatter_chart({"s": [(0, 0), (10, 5)]}, title="S",
                             width=20, height=8)
        assert "S" in text
        assert text.count("\n") >= 8

    def test_glyphs_placed(self):
        text = scatter_chart({"s": [(0, 0), (10, 5)]}, width=20, height=8)
        assert "#" in text

    def test_multiple_series_glyphs(self):
        text = scatter_chart({"a": [(0, 0)], "b": [(5, 5)]},
                             width=20, height=8)
        assert "#" in text and "*" in text

    def test_labels(self):
        text = scatter_chart({"s": [(1, 2)]}, xlabel="KB", ylabel="gain")
        assert "x: KB" in text

    def test_empty(self):
        assert scatter_chart({}, title="E") == "E"

    def test_single_point_no_crash(self):
        scatter_chart({"s": [(3.0, 4.0)]})


class TestStackedBar:
    def test_percentages(self):
        text = stacked_pct_bar({"a": 25.0, "b": 75.0})
        assert "25.0%" in text and "75.0%" in text

    def test_bar_width(self):
        text = stacked_pct_bar({"a": 1.0}, width=30)
        bar_line = [l for l in text.splitlines() if l.startswith("|")][0]
        assert len(bar_line) == 32  # |...| with width 30

    def test_zero_total_no_crash(self):
        stacked_pct_bar({"a": 0.0})

"""Cross-statistic consistency properties of full simulations.

These run one moderately-sized simulation per policy and assert the
internal bookkeeping adds up — the kind of invariants that catch subtle
double-counting bugs in the pipeline.
"""

import pytest

from repro.simulator.policies import build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

PROFILE = WorkloadProfile(name="consistency-test", num_functions=200,
                          num_handlers=20, num_leaves=20, call_depth=4,
                          handler_zipf_alpha=0.2, callee_zipf_alpha=0.2)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(PROFILE, seed=9)


def run(layout, policy):
    machine = build_machine(layout, PROFILE, get_policy(policy), seed=9)
    stats = machine.run(20_000, warmup=5_000)
    return machine, stats


@pytest.fixture(scope="module", params=["baseline", "pdip_44", "eip_46",
                                        "pdip_44_emissary", "fec_ideal"])
def run_result(request, layout):
    return run(layout, request.param)


class TestSlotAccounting:
    def test_slots_partition_exactly(self, run_result):
        _, st = run_result
        assert (st.slots_retiring + st.slots_bad_speculation
                + st.slots_frontend_bound + st.slots_backend_bound
                == st.slots_total)

    def test_slots_total_is_width_times_cycles(self, run_result):
        machine, st = run_result
        assert st.slots_total == machine.config.decode_width * st.cycles

    def test_retired_close_to_retiring_slots(self, run_result):
        """Decoded-correct instructions eventually retire; over a long
        window the two counts track each other within the ROB depth."""
        machine, st = run_result
        assert abs(st.slots_retiring - st.instructions) <= \
            machine.config.rob_entries + machine.config.decode_width


class TestMissAccounting:
    def test_l1i_misses_bounded_by_accesses(self, run_result):
        _, st = run_result
        assert 0 <= st.l1i_misses <= st.l1i_accesses

    def test_starvation_bounded_by_cycles(self, run_result):
        _, st = run_result
        assert 0 <= st.decode_starvation_cycles <= st.cycles

    def test_fec_starvation_subset(self, run_result):
        _, st = run_result
        # entry starvation can be charged across warmup boundaries, so
        # allow slack of one entry's worth
        assert st.fec_starvation_cycles <= st.decode_starvation_cycles + 500


class TestPrefetchAccounting:
    def test_resolution_bounded_by_issue(self, run_result):
        _, st = run_result
        resolved = (st.prefetch_useful + st.prefetch_late
                    + st.prefetch_useless)
        assert resolved <= st.prefetches_issued

    def test_fec_events_have_lines(self, run_result):
        machine, st = run_result
        assert len(machine.fec.fec_lines) <= len(machine.fec.retired_lines_seen)


class TestResteerAccounting:
    def test_kinds_sum(self, run_result):
        _, st = run_result
        assert (st.resteers_btb_miss + st.resteers_cond
                + st.resteers_indirect + st.resteers_return == st.resteers)

    def test_wrong_path_requires_resteers(self, run_result):
        _, st = run_result
        if st.wrong_path_blocks > 0:
            assert st.resteers > 0

"""Shared test fixtures.

The simulation backend must never leak into tests from the ambient
environment: a developer running the suite with ``REPRO_BACKEND=fast``
exported would silently retarget every un-pinned simulation — most
critically the golden-stats anchors — at the fast core, making a
"both backends pass" signal meaningless. Tests that care about the
backend pin it explicitly through ``MachineConfig(backend=...)``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_backend(monkeypatch):
    """Strip ``REPRO_BACKEND`` so every test starts backend-neutral."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)

"""Tests for the composite branch prediction unit."""

import pytest

from repro.branch.bpu import BranchPredictionUnit, MispredictKind
from repro.workloads.layout import BasicBlock, BranchKind


def block(kind, bid=0, addr=0x1000, n=4, **kw):
    return BasicBlock(bid=bid, addr=addr, num_instructions=n, kind=kind, **kw)


@pytest.fixture
def bpu():
    return BranchPredictionUnit(btb_entries=256, btb_assoc=4, seed=1)


class TestFallthrough:
    def test_never_mispredicts(self, bpu):
        blk = block(BranchKind.FALLTHROUGH)
        result = bpu.predict_block(blk, False, blk.end_addr)
        assert result.mispredict is MispredictKind.NONE


class TestDirect:
    def test_first_taken_is_btb_miss(self, bpu):
        blk = block(BranchKind.DIRECT)
        result = bpu.predict_block(blk, True, 0x2000)
        assert result.mispredict is MispredictKind.BTB_MISS
        assert result.predicted_target == blk.end_addr  # sequential wrong path

    def test_second_execution_hits(self, bpu):
        blk = block(BranchKind.DIRECT)
        bpu.predict_block(blk, True, 0x2000)
        result = bpu.predict_block(blk, True, 0x2000)
        assert result.mispredict is MispredictKind.NONE


class TestConditional:
    def test_never_taken_stays_invisible(self, bpu):
        """An always-not-taken branch never enters the BTB and never
        resteers."""
        blk = block(BranchKind.COND, taken_target=1, fallthrough=2)
        for _ in range(20):
            result = bpu.predict_block(blk, False, blk.end_addr)
            assert result.mispredict is MispredictKind.NONE
        assert bpu.btb.lookup(blk.branch_pc) is None

    def test_first_taken_is_btb_miss(self, bpu):
        blk = block(BranchKind.COND, taken_target=1, fallthrough=2)
        result = bpu.predict_block(blk, True, 0x2000)
        assert result.mispredict is MispredictKind.BTB_MISS

    def test_biased_taken_converges(self, bpu):
        blk = block(BranchKind.COND, taken_target=1, fallthrough=2)
        mispredicts = 0
        for i in range(60):
            result = bpu.predict_block(blk, True, 0x2000)
            if i >= 10 and result.mispredict.is_resteer:
                mispredicts += 1
        assert mispredicts <= 2

    def test_direction_flip_mispredicts_once_then_relearns(self, bpu):
        blk = block(BranchKind.COND, taken_target=1, fallthrough=2)
        for _ in range(30):
            bpu.predict_block(blk, True, 0x2000)
        result = bpu.predict_block(blk, False, blk.end_addr)
        assert result.mispredict is MispredictKind.COND_MISPREDICT
        assert result.predicted_target == 0x2000  # wrong path = taken side


class TestIndirect:
    def test_first_execution_btb_miss(self, bpu):
        blk = block(BranchKind.INDIRECT, indirect_targets=(1,),
                    indirect_weights=(1.0,))
        result = bpu.predict_block(blk, True, 0x3000)
        assert result.mispredict is MispredictKind.BTB_MISS

    def test_monomorphic_converges(self, bpu):
        blk = block(BranchKind.INDIRECT, indirect_targets=(1,),
                    indirect_weights=(1.0,))
        mispredicts = 0
        for i in range(40):
            result = bpu.predict_block(blk, True, 0x3000)
            if i >= 10 and result.mispredict.is_resteer:
                mispredicts += 1
        assert mispredicts <= 2

    def test_target_change_mispredicts(self, bpu):
        blk = block(BranchKind.INDIRECT, indirect_targets=(1, 2),
                    indirect_weights=(0.5, 1.0))
        for _ in range(20):
            bpu.predict_block(blk, True, 0x3000)
        result = bpu.predict_block(blk, True, 0x4000)
        assert result.mispredict is MispredictKind.INDIRECT_MISPREDICT


class TestReturn:
    def test_ras_predicts_return(self, bpu):
        call = block(BranchKind.CALL, bid=0, addr=0x1000, taken_target=5,
                     fallthrough=1)
        ret = block(BranchKind.RETURN, bid=5, addr=0x5000)
        # discover the return once so it's in the BTB
        bpu.predict_block(call, True, 0x5000)
        bpu.predict_block(ret, True, call.end_addr)
        # second round: call pushes, return should pop correctly
        bpu.predict_block(call, True, 0x5000)
        result = bpu.predict_block(ret, True, call.end_addr)
        assert result.mispredict is MispredictKind.NONE


class TestMispredictKind:
    def test_resteer_flags(self):
        assert not MispredictKind.NONE.is_resteer
        for kind in (MispredictKind.COND_MISPREDICT,
                     MispredictKind.INDIRECT_MISPREDICT,
                     MispredictKind.RETURN_MISPREDICT,
                     MispredictKind.BTB_MISS):
            assert kind.is_resteer

    def test_predecode_resolution(self):
        assert MispredictKind.BTB_MISS.resolves_at_predecode
        assert not MispredictKind.COND_MISPREDICT.resolves_at_predecode

"""Unit tests for the ``repro bench`` harness (src/repro/bench.py).

These exercise the harness plumbing — cell records, report assembly,
baseline joining, and the regression gate — without long simulations:
the one real ``run_cell`` call uses a tiny instruction budget.
"""

from __future__ import annotations

import json

from repro.bench import (
    BenchCell,
    BenchReport,
    DEFAULT_CELLS,
    DEFAULT_TOLERANCE,
    QUICK_CELLS,
    check_regression,
    load_baseline,
    run_cell,
    write_report,
)


class TestGrids:
    def test_quick_is_subset_of_default(self):
        default_names = {c.name for c in DEFAULT_CELLS}
        for cell in QUICK_CELLS:
            assert cell.name in default_names

    def test_cell_names_unique(self):
        names = [c.name for c in DEFAULT_CELLS]
        assert len(names) == len(set(names))

    def test_default_grid_covers_probe_and_budgets(self):
        assert any(c.probe for c in DEFAULT_CELLS)
        budgets = {c.instructions for c in DEFAULT_CELLS}
        assert len(budgets) >= 2  # short and long

    def test_cell_key_is_name(self):
        cell = DEFAULT_CELLS[0]
        assert cell.key == cell.name


class TestRunCell:
    def test_run_cell_record_fields(self):
        cell = BenchCell(name="tiny", benchmark="tatp", policy="baseline",
                         instructions=2_000, warmup=400)
        rec = run_cell(cell, repeats=1)
        assert rec["name"] == "tiny"
        assert rec["benchmark"] == "tatp"
        assert rec["policy"] == "baseline"
        assert rec["instructions"] == 2_000
        assert rec["wall_s"] > 0
        assert rec["simulated_cycles"] > 0
        assert rec["cycles_per_sec"] > 0
        assert rec["ipc"] > 0
        # the probe-free cell should fast-forward at least once
        assert rec["fast_forwarded_cycles"] > 0
        assert rec["probe"] is False


def _report_with(ratios):
    report = BenchReport(calib=1.0)
    for i, ratio in enumerate(ratios):
        rec = {"name": "cell-%d" % i, "cycles_per_sec": 100.0,
               "norm_score": 1.0}
        if ratio is not None:
            rec["speedup_vs_baseline"] = ratio
            rec["norm_ratio_vs_baseline"] = ratio
        report.cells.append(rec)
    return report


class TestRegressionGate:
    def test_no_failures_when_at_baseline(self):
        assert check_regression(_report_with([1.0, 1.1])) == []

    def test_within_tolerance_passes(self):
        # 0.81 > 1 - 0.20
        assert check_regression(_report_with([0.81])) == []

    def test_beyond_tolerance_fails(self):
        failures = check_regression(_report_with([0.79]))
        assert len(failures) == 1
        assert "cell-0" in failures[0]

    def test_custom_tolerance(self):
        assert check_regression(_report_with([0.95]), tolerance=0.02)
        assert not check_regression(_report_with([0.99]), tolerance=0.02)

    def test_cells_without_baseline_never_gate(self):
        assert check_regression(_report_with([None, None])) == []

    def test_default_tolerance_is_twenty_percent(self):
        assert DEFAULT_TOLERANCE == 0.20


class TestReportDocument:
    def test_geomeans_present_when_joined(self):
        doc = _report_with([2.0, 0.5]).to_dict()
        assert abs(doc["geomean_speedup_vs_baseline"] - 1.0) < 1e-9
        assert abs(doc["geomean_norm_ratio_vs_baseline"] - 1.0) < 1e-9

    def test_geomeans_absent_without_baseline(self):
        doc = _report_with([None]).to_dict()
        assert "geomean_speedup_vs_baseline" not in doc
        assert "geomean_norm_ratio_vs_baseline" not in doc

    def test_write_and_load_roundtrip(self, tmp_path):
        report = _report_with([1.5])
        out = write_report(report, tmp_path / "BENCH_runner.json")
        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        assert doc["cells"][0]["name"] == "cell-0"
        # write_report output parses with the baseline loader too
        assert load_baseline(out)["calib_score"] == 1.0

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None

"""Semantics of the special policy modes at machine level (small runs)."""

import pytest

from repro.simulator.policies import build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

PROFILE = WorkloadProfile(name="semantics-test", num_functions=120,
                          num_handlers=12, num_leaves=12, call_depth=4,
                          handler_zipf_alpha=0.2, callee_zipf_alpha=0.2)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(PROFILE, seed=8)


def run(layout, policy, n=15_000, warmup=4_000):
    machine = build_machine(layout, PROFILE, get_policy(policy), seed=8)
    return machine, machine.run(n, warmup=warmup)


class TestZeroCostSemantics:
    def test_no_late_prefetches(self, layout):
        _, st = run(layout, "pdip_44_zero_cost")
        assert st.prefetch_late == 0

    def test_same_table_behaviour_as_real_pdip(self, layout):
        """Zero-cost changes fill latency, not the learning: both
        variants should insert comparable table content."""
        m_real, _ = run(layout, "pdip_44")
        m_zero, _ = run(layout, "pdip_44_zero_cost")
        real_ins = m_real.prefetcher.inserted_events
        zero_ins = m_zero.prefetcher.inserted_events
        assert zero_ins > 0
        assert abs(real_ins - zero_ins) < max(60, 0.6 * real_ins)


class TestFecIdealSemantics:
    def test_fec_lines_populated(self, layout):
        machine, _ = run(layout, "fec_ideal")
        assert machine.hierarchy.fec_lines

    def test_uses_emissary_l2(self, layout):
        from repro.memory.replacement import EmissaryPolicy

        machine, _ = run(layout, "fec_ideal")
        assert isinstance(machine.hierarchy.l2_policy, EmissaryPolicy)


class TestEmissaryCombination:
    def test_pdip_emissary_promotes_and_inserts(self, layout):
        machine, st = run(layout, "pdip_44_emissary")
        assert machine.hierarchy.l2_policy.promotions > 0
        assert machine.prefetcher.inserted_events > 0

    def test_eip_emissary_runs(self, layout):
        machine, st = run(layout, "eip_46_emissary")
        assert machine.prefetcher.entangles > 0


class TestPathVariant:
    def test_path_variant_stores_paths(self, layout):
        machine, _ = run(layout, "pdip_44_path")
        assert machine.prefetcher.config.use_path_info
        # at least one entry carries a path signature
        paths = [e.path for ways in machine.prefetcher.table._sets.values()
                 for e in ways.values()]
        assert any(p is not None for p in paths)

    def test_plain_pdip_stores_no_paths(self, layout):
        machine, _ = run(layout, "pdip_44")
        paths = [e.path for ways in machine.prefetcher.table._sets.values()
                 for e in ways.values()]
        assert all(p is None for p in paths)

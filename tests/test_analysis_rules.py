"""Per-rule fixture tests: each family must catch its seeded violation.

Every test builds a tiny package tree under ``tmp_path``, seeds one
violation, and asserts the rule fires on it — and a corrected twin stays
clean. The root package is deliberately *not* named ``repro`` to prove
the rules key on module-name suffixes, not the installed package.
"""

from textwrap import dedent

from repro.analysis.engine import discover, run_rules
from repro.analysis.rules import get_rules
from repro.analysis.rules.concurrency import (
    AsyncBlockingCallRule,
    FireAndForgetTaskRule,
    PoolChildInitRule,
    RouteConformanceRule,
    UnawaitedCoroutineRule,
)
from repro.analysis.rules.config_coherence import (
    ConfigUnknownFieldRule,
    ConfigUnusedFieldRule,
)
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.rules.fastcore_alloc import FastcoreAllocRule
from repro.analysis.rules.hotpath import AttrOutsideInitRule, MissingSlotsRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.stats_parity import StatsParityRule
from repro.analysis.rules.telemetry_imports import TelemetryNoopImportRule

PKG = {
    "pkg/__init__.py": "",
    "pkg/utils/__init__.py": "",
    "pkg/simulator/__init__.py": "",
    "pkg/workloads/__init__.py": "",
    "pkg/frontend/__init__.py": "",
    "pkg/branch/__init__.py": "",
    "pkg/core/__init__.py": "",
    "pkg/experiments/__init__.py": "",
    "pkg/reporting/__init__.py": "",
}


def lint(tmp_path, files, rules):
    merged = dict(PKG)
    merged.update(files)
    for rel, source in merged.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    project = discover([tmp_path], root=tmp_path)
    return run_rules(project, rules)


def rules_fired(findings):
    return sorted({f.rule for f in findings})


class TestDeterminism:
    def test_wallclock_in_stat_unit(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/clock.py": "import time\nt = time.time()\n",
        }, [WallClockRule()])
        assert rules_fired(findings) == ["determinism-wallclock"]

    def test_wallclock_bare_reference(self, tmp_path):
        # default_factory=time.time never *calls* at def time but is
        # exactly as nondeterministic — must still fire
        findings = lint(tmp_path, {
            "pkg/simulator/rec.py": """\
                import time
                from dataclasses import dataclass, field

                @dataclass
                class R:
                    started: float = field(default_factory=time.time)
            """,
        }, [WallClockRule()])
        assert rules_fired(findings) == ["determinism-wallclock"]

    def test_wallclock_fine_outside_stat_units(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/reporting/timer.py": "import time\nt = time.time()\n",
        }, [WallClockRule()])
        assert findings == []

    def test_unseeded_rng(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/jitter.py": """\
                import random
                x = random.random()
                r = random.Random()
            """,
        }, [UnseededRngRule()])
        assert len(findings) == 2
        assert rules_fired(findings) == ["determinism-unseeded-rng"]

    def test_seeded_rng_is_fine(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/jitter.py": """\
                import random
                r = random.Random(1234)
                x = r.random()
            """,
        }, [UnseededRngRule()])
        assert findings == []

    def test_set_iteration(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/frontend/scan.py": """\
                def f(lines):
                    live = set(lines)
                    total = 0
                    for line in live:
                        total += line
                    return total
            """,
        }, [SetIterationRule()])
        assert rules_fired(findings) == ["determinism-set-iteration"]

    def test_sorted_set_iteration_is_fine(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/frontend/scan.py": """\
                def f(lines):
                    live = set(lines)
                    return [line for line in sorted(live)]
            """,
        }, [SetIterationRule()])
        assert findings == []

    def test_set_attr_iteration(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/branch/track.py": """\
                class Tracker:
                    def __init__(self):
                        self.seen = set()

                    def dump(self):
                        return [x for x in self.seen]
            """,
        }, [SetIterationRule()])
        assert rules_fired(findings) == ["determinism-set-iteration"]


class TestLayering:
    def test_workloads_must_not_import_simulator(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/runner.py": "X = 1\n",
            "pkg/workloads/gen.py": "from pkg.simulator.runner import X\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/workloads/gen.py"

    def test_relative_import_resolved(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/experiments/driver.py": "Y = 2\n",
            "pkg/frontend/fetch.py": "from ..experiments.driver import Y\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert "experiments" in findings[0].message

    def test_root_facade_import_flagged(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/engine.py": "import pkg\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert "facade" in findings[0].message

    def test_allowed_edges_are_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/utils/helpers.py": "Z = 3\n",
            "pkg/workloads/gen.py": "from pkg.utils.helpers import Z\n",
            "pkg/frontend/fetch.py": "from pkg.workloads.gen import Z\n",
            "pkg/experiments/driver.py": "from pkg.frontend.fetch import Z\n",
        }, [LayeringRule()])
        assert findings == []

    def test_service_may_import_simulator_and_telemetry(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/simulator/runner.py": "X = 1\n",
            "pkg/telemetry/__init__.py": "",
            "pkg/telemetry/handle.py": "H = 2\n",
            "pkg/service/server.py": (
                "from pkg.simulator.runner import X\n"
                "from pkg.telemetry.handle import H\n"
            ),
        }, [LayeringRule()])
        assert findings == []

    def test_model_units_must_not_import_service(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/store.py": "S = 1\n",
            "pkg/core/engine.py": "from pkg.service.store import S\n",
            "pkg/frontend/fetch.py": "from pkg.service.store import S\n",
            "pkg/memory/__init__.py": "",
            "pkg/memory/cache.py": "from pkg.service.store import S\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        offenders = sorted(f.path for f in findings)
        assert offenders == ["pkg/core/engine.py", "pkg/frontend/fetch.py",
                             "pkg/memory/cache.py"]
        assert all("service" in f.message for f in findings)

    def test_simulator_must_not_import_service(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/store.py": "S = 1\n",
            "pkg/simulator/runner.py": "from pkg.service.store import S\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/simulator/runner.py"

    def test_sweeps_may_import_service_and_simulator(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/client.py": "C = 1\n",
            "pkg/simulator/runner.py": "X = 2\n",
            "pkg/sweeps/__init__.py": "",
            "pkg/sweeps/executor.py": (
                "from pkg.service.client import C\n"
                "from pkg.simulator.runner import X\n"
            ),
        }, [LayeringRule()])
        assert findings == []

    def test_simulator_must_not_import_sweeps(self, tmp_path):
        # the model/simulator must never know it is being swept
        findings = lint(tmp_path, {
            "pkg/sweeps/__init__.py": "",
            "pkg/sweeps/plan.py": "P = 1\n",
            "pkg/simulator/runner.py": "from pkg.sweeps.plan import P\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/simulator/runner.py"
        assert "sweeps" in findings[0].message

    def test_core_must_not_import_dash(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/dash/__init__.py": "",
            "pkg/dash/page.py": "H = 1\n",
            "pkg/core/engine.py": "from pkg.dash.page import H\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/core/engine.py"

    def test_service_may_import_dash_not_vice_versa(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/dash/__init__.py": "",
            "pkg/dash/state.py": "B = 1\n",
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": "from pkg.dash.state import B\n",
        }, [LayeringRule()])
        assert findings == []
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": "S = 1\n",
            "pkg/dash/__init__.py": "",
            "pkg/dash/state.py": "from pkg.service.server import S\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/dash/state.py"

    def test_experiments_may_import_sweeps(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/sweeps/__init__.py": "",
            "pkg/sweeps/executor.py": "R = 1\n",
            "pkg/experiments/driver.py": "from pkg.sweeps.executor import R\n",
        }, [LayeringRule()])
        assert findings == []

    def test_traces_may_import_workloads_and_service(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/store.py": "S = 1\n",
            "pkg/workloads/layout.py": "L = 1\n",
            "pkg/traces/__init__.py": "",
            "pkg/traces/ingest.py": (
                "from pkg.service.store import S\n"
                "from pkg.workloads.layout import L\n"
                "from pkg.utils import thing\n"
            ),
        }, [LayeringRule()])
        assert findings == []

    def test_traces_must_not_import_simulator(self, tmp_path):
        # ingestion builds workloads; it must not reach up into the
        # machinery that will eventually run them
        findings = lint(tmp_path, {
            "pkg/simulator/runner.py": "X = 1\n",
            "pkg/traces/__init__.py": "",
            "pkg/traces/synth.py": "from pkg.simulator.runner import X\n",
        }, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert findings[0].path == "pkg/traces/synth.py"
        assert "simulator" in findings[0].message

    def test_model_and_simulator_must_not_import_traces(self, tmp_path):
        # the inverse edge: ingested benchmarks reach the simulator only
        # through the workloads.profiles provider hook (a dotted-name
        # import at lookup time), never a static import
        units = ("core", "frontend", "simulator", "workloads")
        files = {"pkg/traces/__init__.py": "",
                 "pkg/traces/registry.py": "T = 1\n"}
        files.update(("pkg/%s/mod.py" % unit,
                      "from pkg.traces.registry import T\n")
                     for unit in units)
        findings = lint(tmp_path, files, [LayeringRule()])
        assert rules_fired(findings) == ["layering-forbidden-import"]
        assert (sorted(f.path for f in findings)
                == sorted("pkg/%s/mod.py" % unit for unit in units))


class TestHotPath:
    def test_per_event_class_without_slots(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/branch/btb.py": """\
                class Entry:
                    def __init__(self, tag):
                        self.tag = tag

                class Table:
                    def __init__(self):
                        self.rows = {}

                    def insert(self, tag):
                        self.rows[tag] = Entry(tag)
            """,
        }, [MissingSlotsRule()])
        assert rules_fired(findings) == ["hotpath-missing-slots"]
        assert "Entry" in findings[0].message

    def test_slotted_class_is_fine(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/branch/btb.py": """\
                class Entry:
                    __slots__ = ("tag",)

                    def __init__(self, tag):
                        self.tag = tag

                class Table:
                    def insert(self, tag):
                        return Entry(tag)
            """,
        }, [MissingSlotsRule()])
        assert findings == []

    def test_slotted_dataclass_idiom_is_fine(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/branch/btb.py": """\
                from dataclasses import dataclass
                from pkg.utils import SLOTTED

                @dataclass(**SLOTTED)
                class Entry:
                    tag: int

                class Table:
                    def insert(self, tag):
                        return Entry(tag)
            """,
        }, [MissingSlotsRule()])
        assert findings == []

    def test_manager_built_in_init_is_exempt(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/branch/btb.py": """\
                class Predictor:
                    def __init__(self):
                        self.table = {}

                class Machine:
                    def __init__(self):
                        self.pred = Predictor()
            """,
        }, [MissingSlotsRule()])
        assert findings == []

    def test_attr_outside_init(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/memory/block.py": """\
                class Block:
                    __slots__ = ("line", "state")

                    def __init__(self, line):
                        self.line = line
                        self.state = 0

                    def touch(self):
                        self.extra_note = 1
            """,
            "pkg/memory/__init__.py": "",
        }, [AttrOutsideInitRule()])
        assert rules_fired(findings) == ["hotpath-attr-outside-init"]
        assert "extra_note" in findings[0].message


class TestStatsParity:
    MACHINE_OK = """\
        class Machine:
            def run(self, n):
                st = self.stats
                st.cycles += 1
                st.instructions += 1

            def _fast_forward(self, k):
                self.stats.cycles += k
    """

    STATS = """\
        class SimulationStats:
            cycles: int = 0
            instructions: int = 0
    """

    def test_counter_missing_from_fast_forward(self, tmp_path):
        # the acceptance-criteria scenario: a counter added to the
        # per-cycle path but omitted from _fast_forward must be caught
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": """\
                class SimulationStats:
                    cycles: int = 0
                    instructions: int = 0
                    lost_cycles: int = 0
            """,
            "pkg/simulator/machine.py": """\
                class Machine:
                    def run(self, n):
                        st = self.stats
                        st.cycles += 1
                        st.instructions += 1
                        st.lost_cycles += 1

                    def _fast_forward(self, k):
                        self.stats.cycles += k
            """,
        }, [StatsParityRule()])
        assert rules_fired(findings) == ["stats-parity-fast-forward"]
        assert "lost_cycles" in findings[0].message
        assert "_fast_forward" in findings[0].message

    def test_stale_batch_update(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": """\
                class SimulationStats:
                    cycles: int = 0
                    instructions: int = 0
                    old_counter: int = 0
            """,
            "pkg/simulator/machine.py": """\
                class Machine:
                    def run(self, n):
                        st = self.stats
                        st.cycles += 1

                    def _fast_forward(self, k):
                        self.stats.cycles += k
                        self.stats.old_counter += k
            """,
        }, [StatsParityRule()])
        assert rules_fired(findings) == ["stats-parity-fast-forward"]
        assert "old_counter" in findings[0].message
        assert "stale" in findings[0].message

    def test_balanced_machine_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": self.STATS,
            "pkg/simulator/machine.py": self.MACHINE_OK,
        }, [StatsParityRule()])
        assert findings == []

    def test_event_gated_counters_exempt(self, tmp_path):
        # instructions is event-gated: mutated per-cycle, absent from
        # _fast_forward, and that is correct
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": self.STATS,
            "pkg/simulator/machine.py": self.MACHINE_OK,
        }, [StatsParityRule()])
        assert all("instructions" not in f.message for f in findings)
        assert findings == []


class TestStatsParityFastCore:
    STATS = """\
        class SimulationStats:
            cycles: int = 0
            instructions: int = 0
            lost_cycles: int = 0
    """

    MACHINE = """\
        class Machine:
            def run(self, n):
                st = self.stats
                st.cycles += 1
                st.instructions += 1

            def _fast_forward(self, k):
                self.stats.cycles += k
    """

    def test_fastcore_counter_missing_from_fast_forward(self, tmp_path):
        # the same contract binds the flat-array core: a counter synced
        # back from FastMachine.run's localized loop but absent from its
        # own _fast_forward must be caught, with the reference core clean
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": self.STATS,
            "pkg/simulator/machine.py": self.MACHINE,
            "pkg/simulator/fastcore.py": """\
                class FastMachine:
                    def run(self, n):
                        st = self.stats
                        st_lost = st.lost_cycles
                        st_lost += 1
                        st.cycles += 1
                        st.lost_cycles = st_lost

                    def _fast_forward(self, k):
                        self.stats.cycles += k
            """,
        }, [StatsParityRule()])
        assert rules_fired(findings) == ["stats-parity-fast-forward"]
        assert len(findings) == 1
        assert "lost_cycles" in findings[0].message
        assert findings[0].path.endswith("fastcore.py")

    def test_balanced_both_cores_are_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/stats.py": self.STATS,
            "pkg/simulator/machine.py": self.MACHINE,
            "pkg/simulator/fastcore.py": self.MACHINE.replace(
                "class Machine", "class FastMachine"),
        }, [StatsParityRule()])
        assert findings == []


class TestFastcoreAlloc:
    def test_per_event_alloc_in_hot_loop_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/fastcore.py": """\
                from pkg.frontend.ftq import FTQEntry

                class FastMachine:
                    def __init__(self):
                        self._proxy = FTQEntry(None, [], 0)

                    def _enqueue_next(self, cycle):
                        return FTQEntry(None, [], cycle)
            """,
            "pkg/frontend/ftq.py": "class FTQEntry:\n    pass\n",
        }, [FastcoreAllocRule()])
        assert rules_fired(findings) == ["fastcore-no-per-event-alloc"]
        assert len(findings) == 1  # the __init__ proxy is sanctioned
        assert "_enqueue_next" in findings[0].message

    def test_proxies_in_init_only_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/fastcore.py": """\
                from pkg.frontend.ftq import FTQEntry

                class FastMachine:
                    def __init__(self):
                        self._enq_proxy = FTQEntry(None, [], 0)
                        self._ret_proxy = FTQEntry(None, [], 0)

                    def _retire_slot(self, seq, cycle):
                        proxy = self._ret_proxy
                        proxy.enqueued_at = cycle
                        return proxy
            """,
            "pkg/frontend/ftq.py": "class FTQEntry:\n    pass\n",
        }, [FastcoreAllocRule()])
        assert findings == []

    def test_reference_core_is_unconstrained(self, tmp_path):
        # only the fast core promises array-resident entries; the
        # reference core allocates real FTQEntry objects by design
        findings = lint(tmp_path, {
            "pkg/simulator/machine.py": """\
                from pkg.frontend.ftq import FTQEntry

                class Machine:
                    def _enqueue_next(self, cycle):
                        return FTQEntry(None, [], cycle)
            """,
            "pkg/frontend/ftq.py": "class FTQEntry:\n    pass\n",
        }, [FastcoreAllocRule()])
        assert findings == []


class TestConfigCoherence:
    CONFIG = """\
        class MachineConfig:
            fetch_width: int = 4
            decode_width: int = 4
            dead_knob: int = 0
    """

    def test_unknown_attribute_read(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/config.py": self.CONFIG,
            "pkg/experiments/sweep.py": """\
                from pkg.simulator.config import MachineConfig

                def f(cfg: MachineConfig):
                    return cfg.fetch_witdh
            """,
        }, [ConfigUnknownFieldRule()])
        assert rules_fired(findings) == ["config-unknown-field"]
        assert "fetch_witdh" in findings[0].message

    def test_unknown_constructor_keyword(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/config.py": self.CONFIG,
            "pkg/experiments/sweep.py": """\
                from pkg.simulator.config import MachineConfig

                cfg = MachineConfig(fetch_wdith=8)
            """,
        }, [ConfigUnknownFieldRule()])
        assert rules_fired(findings) == ["config-unknown-field"]
        assert "fetch_wdith" in findings[0].message

    def test_tracked_through_self_attribute(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/config.py": self.CONFIG,
            "pkg/simulator/machine.py": """\
                from pkg.simulator.config import MachineConfig

                class Machine:
                    def __init__(self, cfg: MachineConfig):
                        self.cfg = cfg

                    def step(self):
                        c = self.cfg
                        return c.decode_widht
            """,
        }, [ConfigUnknownFieldRule()])
        assert rules_fired(findings) == ["config-unknown-field"]
        assert "decode_widht" in findings[0].message

    def test_unused_field_is_warning(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/config.py": self.CONFIG,
            "pkg/simulator/machine.py": """\
                from pkg.simulator.config import MachineConfig

                def f(cfg: MachineConfig):
                    return cfg.fetch_width + cfg.decode_width
            """,
        }, [ConfigUnusedFieldRule()])
        assert rules_fired(findings) == ["config-unused-field"]
        assert len(findings) == 1
        assert "dead_knob" in findings[0].message
        assert findings[0].severity == "warning"

    def test_all_fields_used_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/config.py": self.CONFIG,
            "pkg/simulator/machine.py": """\
                from pkg.simulator.config import MachineConfig

                def f(cfg: MachineConfig):
                    return cfg.fetch_width + cfg.decode_width + cfg.dead_knob
            """,
        }, [ConfigUnusedFieldRule()])
        assert findings == []


class TestTelemetryImports:
    def test_live_import_in_hot_module_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/engine.py":
                "from pkg.telemetry.recorder import TraceRecorder\n",
        }, [TelemetryNoopImportRule()])
        assert rules_fired(findings) == ["telemetry-noop-import"]
        assert "telemetry.handle" in findings[0].message

    def test_package_facade_in_hot_module_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/memory/__init__.py": "",
            "pkg/memory/cache.py":
                "from pkg.telemetry import TelemetrySession\n",
        }, [TelemetryNoopImportRule()])
        assert rules_fired(findings) == ["telemetry-noop-import"]
        assert "facade" in findings[0].message

    def test_machine_module_counts_as_hot(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/machine.py":
                "import pkg.telemetry.session\n",
        }, [TelemetryNoopImportRule()])
        assert rules_fired(findings) == ["telemetry-noop-import"]

    def test_handle_import_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/frontend/pq.py":
                "from pkg.telemetry.handle import NULL_RECORDER\n",
            "pkg/simulator/machine.py":
                "from pkg.telemetry.handle import NULL_RECORDER\n",
        }, [TelemetryNoopImportRule()])
        assert findings == []

    def test_drivers_are_unconstrained(self, tmp_path):
        # runner/experiments attach sessions — the live side is theirs
        findings = lint(tmp_path, {
            "pkg/simulator/runner.py":
                "from pkg.telemetry import TelemetrySession\n",
            "pkg/experiments/driver.py":
                "from pkg.telemetry.diff import diff_paths\n",
        }, [TelemetryNoopImportRule()])
        assert findings == []

    def test_layering_allows_the_handle_edge(self, tmp_path):
        # the DAG row that makes the handle importable everywhere
        findings = lint(tmp_path, {
            "pkg/memory/__init__.py": "",
            "pkg/memory/cache.py":
                "from pkg.telemetry.handle import NULL_RECORDER\n",
            "pkg/core/engine.py":
                "from pkg.telemetry.handle import NULL_RECORDER\n",
        }, [LayeringRule()])
        assert findings == []


class TestWholeRegistry:
    def test_all_rules_run_together(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/simulator/clock.py": "import time\nt = time.time()\n",
            "pkg/workloads/gen.py": "import pkg.simulator.clock\n",
        }, get_rules())
        assert "determinism-wallclock" in rules_fired(findings)
        assert "layering-forbidden-import" in rules_fired(findings)

    def test_telemetry_rule_in_registry(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/engine.py":
                "from pkg.telemetry.session import TelemetrySession\n",
        }, get_rules())
        assert "telemetry-noop-import" in rules_fired(findings)


class TestAsyncBlockingCall:
    def test_direct_blocking_call_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import time

                async def handler():
                    time.sleep(1)
            """,
        }, [AsyncBlockingCallRule()])
        assert rules_fired(findings) == ["async-blocking-call"]
        assert "time.sleep" in findings[0].message

    def test_transitive_through_sync_helper(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import sqlite3

                def helper():
                    sqlite3.connect(":memory:")

                async def handler():
                    helper()
            """,
        }, [AsyncBlockingCallRule()])
        assert rules_fired(findings) == ["async-blocking-call"]
        assert "via helper" in findings[0].message

    def test_transitive_across_modules(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/store.py": """\
                import sqlite3

                class Store:
                    def __init__(self):
                        self._db = sqlite3.connect(":memory:")

                    def info(self):
                        return self._db.execute("select 1")
            """,
            "pkg/service/srv.py": """\
                from pkg.service.store import Store

                class Server:
                    def __init__(self, store: Store):
                        self.store = store

                    async def handler(self):
                        return self.store.info()
            """,
        }, [AsyncBlockingCallRule()])
        assert rules_fired(findings) == ["async-blocking-call"]
        assert "Store.info" in findings[0].message

    def test_executor_offload_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio
                import time

                async def handler():
                    loop = asyncio.get_event_loop()
                    await loop.run_in_executor(None, lambda: time.sleep(1))
                    await loop.run_in_executor(None, time.sleep, 1)
            """,
        }, [AsyncBlockingCallRule()])
        assert findings == []

    def test_helper_recursion_does_not_loop(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                def ping(n):
                    if n:
                        pong(n - 1)

                def pong(n):
                    ping(n)

                async def handler():
                    ping(3)
            """,
        }, [AsyncBlockingCallRule()])
        assert findings == []

    def test_executor_shutdown_wait_false_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                from concurrent.futures import ProcessPoolExecutor

                class Server:
                    def __init__(self):
                        self.pool: ProcessPoolExecutor = None

                    async def fast(self):
                        self.pool.shutdown(wait=False)

                    async def slow(self):
                        self.pool.shutdown(wait=True)
            """,
        }, [AsyncBlockingCallRule()])
        assert rules_fired(findings) == ["async-blocking-call"]
        assert len(findings) == 1
        assert "shutdown" in findings[0].message

    def test_suppressed(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import time

                async def handler():
                    time.sleep(1)  # repro: lint-ignore[async-blocking-call]
            """,
        }, [AsyncBlockingCallRule()])
        assert findings == []


class TestUnawaitedCoroutine:
    def test_discarded_project_coroutine_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                async def job():
                    pass

                async def handler():
                    job()
            """,
        }, [UnawaitedCoroutineRule()])
        assert rules_fired(findings) == ["unawaited-coroutine"]
        assert "'job'" in findings[0].message

    def test_discarded_stdlib_coroutine_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio

                async def handler():
                    asyncio.sleep(1)
            """,
        }, [UnawaitedCoroutineRule()])
        assert rules_fired(findings) == ["unawaited-coroutine"]

    def test_awaited_and_scheduled_are_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio

                async def job():
                    pass

                async def handler():
                    await job()
                    task = asyncio.ensure_future(job())
                    return task
            """,
        }, [UnawaitedCoroutineRule()])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                async def job():
                    pass

                async def handler():
                    job()  # repro: lint-ignore[unawaited-coroutine]
            """,
        }, [UnawaitedCoroutineRule()])
        assert findings == []


class TestFireAndForgetTask:
    def test_discarded_task_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio

                async def job():
                    pass

                def kick():
                    asyncio.ensure_future(job())

                def kick2(loop):
                    loop.create_task(job())
            """,
        }, [FireAndForgetTaskRule()])
        assert len(findings) == 2
        assert rules_fired(findings) == ["fire-and-forget-task"]

    def test_retained_task_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio

                async def job():
                    pass

                def kick(tracked):
                    handle = asyncio.ensure_future(job())
                    tracked.add(asyncio.create_task(job()))
                    return handle
            """,
        }, [FireAndForgetTaskRule()])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import asyncio

                async def job():
                    pass

                def kick():
                    # repro: lint-ignore[fire-and-forget-task]
                    asyncio.ensure_future(job())
            """,
        }, [FireAndForgetTaskRule()])
        assert findings == []


class TestPoolChildInit:
    def test_missing_initializer_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def make():
                    return ProcessPoolExecutor(max_workers=2)
            """,
        }, [PoolChildInitRule()])
        assert rules_fired(findings) == ["pool-child-init"]

    def test_wrong_initializer_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def make(other):
                    return ProcessPoolExecutor(initializer=other)
            """,
        }, [PoolChildInitRule()])
        assert rules_fired(findings) == ["pool-child-init"]
        assert "expected pool_child_init" in findings[0].message

    def test_correct_initializer_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                import concurrent.futures
                from concurrent.futures import ProcessPoolExecutor

                from pkg.utils import pool_child_init

                def make():
                    return ProcessPoolExecutor(
                        max_workers=2, initializer=pool_child_init)

                def make2(kw):
                    # splatted kwargs may carry it; cannot tell -> silent
                    return concurrent.futures.ProcessPoolExecutor(**kw)
            """,
        }, [PoolChildInitRule()])
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/a.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def make():
                    # repro: lint-ignore[pool-child-init]
                    return ProcessPoolExecutor(max_workers=2)
            """,
        }, [PoolChildInitRule()])
        assert findings == []


_ROUTE_SERVER = """\
    from typing import Dict, Optional, Tuple

    class SimulationServer:
        def _route(self, method: str, path: str,
                   body: Optional[Dict[str, object]]
                   ) -> Tuple[int, Dict[str, object]]:
            parts = [p for p in path.split("/") if p]
            if method == "GET" and parts == ["healthz"]:
                return 200, {"ok": True}
            if method == "POST" and parts == ["jobs"]:
                return 201, {"id": "j1"}
            if len(parts) == 2 and parts[0] == "jobs":
                if method == "GET":
                    return 200, {"job": parts[1]}
            return 404, {"error": "no route"}
"""

_ROUTE_CLIENT = """\
    class ServiceClient:
        def _checked(self, method, path, body=None, ok=(200,)):
            pass

        def health(self):
            return self._checked("GET", "/healthz")

        def submit(self):
            return self._checked("POST", "/jobs", {})

        def job(self, job_id):
            return self._checked("GET", "/jobs/%s" % job_id)
"""


class TestRouteConformance:
    def test_matching_protocol_is_clean(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": _ROUTE_SERVER,
            "pkg/service/client.py": _ROUTE_CLIENT,
        }, [RouteConformanceRule()])
        assert findings == []

    def test_client_side_rename_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": _ROUTE_SERVER,
            "pkg/service/client.py":
                _ROUTE_CLIENT.replace('"/healthz"', '"/health"'),
        }, [RouteConformanceRule()])
        fired = rules_fired(findings)
        assert fired == ["route-conformance"]
        # both directions: the send has no handler, the handler no sender
        messages = " | ".join(f.message for f in findings)
        assert "GET /health " in messages or "GET /health but" in messages
        assert "GET /healthz" in messages

    def test_server_side_rename_fires(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py":
                _ROUTE_SERVER.replace('["healthz"]', '["health-z"]'),
            "pkg/service/client.py": _ROUTE_CLIENT,
        }, [RouteConformanceRule()])
        assert rules_fired(findings) == ["route-conformance"]

    def test_dead_route_fires(self, tmp_path):
        extra = (
            '            if method == "POST" and parts == ["reset"]:\n'
            '                return 200, {}\n'
        )
        source = _ROUTE_SERVER.replace(
            '            return 404, {"error": "no route"}\n',
            extra + '            return 404, {"error": "no route"}\n')
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": source,
            "pkg/service/client.py": _ROUTE_CLIENT,
        }, [RouteConformanceRule()])
        assert rules_fired(findings) == ["route-conformance"]
        assert "POST /reset" in findings[0].message
        assert "no client-side sender" in findings[0].message

    def test_wildcard_send_matches_literal_segment(self, tmp_path):
        # "/jobs/%s" must match the parts[0] == "jobs", len == 2 handler
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": _ROUTE_SERVER,
            "pkg/service/client.py": _ROUTE_CLIENT,
        }, [RouteConformanceRule()])
        assert findings == []

    def test_no_service_modules_is_silent(self, tmp_path):
        findings = lint(tmp_path, {
            "pkg/core/a.py": "x = 1\n",
        }, [RouteConformanceRule()])
        assert findings == []

    def test_suppressed_dead_route(self, tmp_path):
        extra = (
            '            if method == "POST" and parts == ["reset"]:\n'
            '                # repro: lint-ignore[route-conformance]\n'
            '                return 200, {}\n'
        )
        source = _ROUTE_SERVER.replace(
            '            return 404, {"error": "no route"}\n',
            extra + '            return 404, {"error": "no route"}\n')
        findings = lint(tmp_path, {
            "pkg/service/__init__.py": "",
            "pkg/service/server.py": source,
            "pkg/service/client.py": _ROUTE_CLIENT,
        }, [RouteConformanceRule()])
        assert findings == []


class TestConcurrencyRegistry:
    def test_concurrency_rules_registered(self):
        names = {rule.name for rule in get_rules()}
        assert {"async-blocking-call", "unawaited-coroutine",
                "fire-and-forget-task", "pool-child-init",
                "route-conformance"} <= names

"""The ingest pipeline: blobs, digests, warm re-ingest, run-key identity."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.service.store import ResultStore
from repro.traces import ingest as ingest_mod
from repro.traces.ingest import (
    blob_payload,
    events_from_blob,
    ingest_events,
    ingest_path,
    load_workload,
    source_fingerprint,
)
from repro.traces.schema import BlockEvent, TraceIngestError
from repro.traces.synthesize import TraceProfile
from repro.utils import freeze


def make_events(n=40, base=0x1000):
    events = []
    for i in range(n):
        start = base + (i % 8) * 0x40
        events.append(BlockEvent(start=start, end=start + 0x20, size=4,
                                 taken=True, target=0, kind="direct"))
    return events


def write_jsonl_file(path, n=40, base=0x1000):
    lines = ['{"schema": "repro-xtrace", "version": 1, "isize": 4}']
    pc = base
    for i in range(n):
        tgt = base + ((i * 7) % 8) * 0x40
        lines.append(json.dumps({"pc": pc + 0x20, "taken": True,
                                 "target": tgt, "size": 4}))
        pc = tgt
    path.write_text("\n".join(lines) + "\n")
    return path


class TestBlob:
    def test_round_trip(self):
        events = make_events()
        payload = blob_payload(events, 4)
        back, isize = events_from_blob(payload)
        assert isize == 4
        assert [(e.start, e.end, e.size, e.taken, e.kind) for e in back] == \
            [(e.start, e.end, e.size, e.taken, e.kind) for e in events]

    def test_digest_is_content_only(self):
        _, d1, _ = ingest_events(make_events(), 4)
        _, d2, _ = ingest_events(make_events(), 4)
        assert d1 == d2

    def test_different_events_different_digest(self):
        _, d1, _ = ingest_events(make_events(base=0x1000), 4)
        _, d2, _ = ingest_events(make_events(base=0x9000), 4)
        assert d1 != d2

    def test_foreign_payload_rejected(self):
        with pytest.raises(TraceIngestError):
            events_from_blob({"schema": "something-else"})
        with pytest.raises(TraceIngestError) as exc:
            events_from_blob({"schema": "repro-xtrace-blob", "version": 99,
                              "events": []})
        assert exc.value.category == "unsupported-version"


class TestFingerprint:
    def test_parameters_change_the_fingerprint(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        base = source_fingerprint(path, "jsonl", 1000, 64, 0)
        assert source_fingerprint(path, "jsonl", 2000, 64, 0) != base
        assert source_fingerprint(path, "jsonl", 1000, 32, 0) != base
        assert source_fingerprint(path, "jsonl", 1000, 64, 1) != base
        assert source_fingerprint(path, "auto", 1000, 64, 0) != base

    def test_bytes_change_the_fingerprint(self, tmp_path):
        a = str(write_jsonl_file(tmp_path / "a.jsonl"))
        b = str(write_jsonl_file(tmp_path / "b.jsonl", base=0x9000))
        assert (source_fingerprint(a, "jsonl", 1000, 64, 0)
                != source_fingerprint(b, "jsonl", 1000, 64, 0))


class TestWarmReingest:
    def test_second_ingest_is_a_store_hit(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        store = ResultStore(str(tmp_path / "store"))
        cold = ingest_path(path, store=store, name="unit")
        assert cold.created
        runs = ingest_mod.PIPELINE_RUNS
        warm = ingest_path(path, store=store)
        # same digest, resolved from the index with ZERO pipeline work
        assert not warm.created
        assert warm.digest == cold.digest
        assert warm.events == cold.events
        assert warm.downsample is None
        assert ingest_mod.PIPELINE_RUNS == runs

    def test_changed_parameters_reingest(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        store = ResultStore(str(tmp_path / "store"))
        ingest_path(path, store=store)
        runs = ingest_mod.PIPELINE_RUNS
        again = ingest_path(path, store=store, seed=7)
        assert again.created
        assert ingest_mod.PIPELINE_RUNS == runs + 1

    def test_gzip_and_plain_are_different_sources(self, tmp_path):
        plain = write_jsonl_file(tmp_path / "t.jsonl")
        gz = tmp_path / "t.jsonl.gz"
        with gzip.open(gz, "wt") as fh:
            fh.write(plain.read_text())
        store = ResultStore(str(tmp_path / "store"))
        a = ingest_path(str(plain), store=store)
        b = ingest_path(str(gz), store=store)
        # different bytes on disk -> both pipelines run, but the decoded
        # content is identical so they share one content-addressed blob
        assert a.created and b.created
        assert a.digest == b.digest
        assert len(store.list_traces()) == 1


class TestLoadWorkload:
    def test_from_store_by_digest(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        store = ResultStore(str(tmp_path / "store"))
        report = ingest_path(path, store=store, name="unit")
        wl = load_workload("unit", report.digest, store=store)
        assert wl.digest == report.digest
        assert wl.layout.num_blocks > 0

    def test_reingests_from_path_when_store_is_cold(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        report = ingest_path(path)
        wl = load_workload("unit", report.digest, path=path)
        assert wl.digest == report.digest

    def test_bundle_drift_detected(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        with pytest.raises(TraceIngestError) as exc:
            load_workload("unit", "0" * 40, path=path)
        assert exc.value.category == "bundle-drift"

    def test_no_store_no_path_fails(self):
        with pytest.raises(TraceIngestError):
            load_workload("unit", "0" * 40)


class TestRunKeyIdentity:
    def test_trace_digest_enters_the_frozen_profile(self):
        a = dict(freeze(TraceProfile(name="t", trace_digest="a" * 40)))
        b = dict(freeze(TraceProfile(name="t", trace_digest="b" * 40)))
        # identical in every respect but the blob digest -> the run key
        # (which freezes the whole profile) can never collide
        assert a != b
        assert a["trace_digest"] == "a" * 40

    def test_run_keys_differ_across_bundled_traces(self):
        from repro.simulator.cache import run_key
        from repro.simulator.policies import get_policy
        from repro.workloads.profiles import external_benchmark_names

        names = [n for n in external_benchmark_names()
                 if n.startswith("trace-")]
        if len(names) < 2:
            pytest.skip("bundled traces unavailable in this checkout")
        spec = get_policy("baseline")
        keys = {run_key(n, spec, 10_000, 1_000, 1, None) for n in names}
        assert len(keys) == len(names)


class TestStoreTraceTable:
    def test_blobs_survive_gc_and_prune(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        store = ResultStore(str(tmp_path / "store"))
        report = ingest_path(path, store=store, name="unit")
        store.prune(max_rows=0)
        store.gc_blobs()
        assert store.get_trace(report.digest) is not None

    def test_info_counts_traces(self, tmp_path):
        path = str(write_jsonl_file(tmp_path / "t.jsonl"))
        store = ResultStore(str(tmp_path / "store"))
        assert store.info()["traces"] == 0
        ingest_path(path, store=store)
        assert store.info()["traces"] == 1

"""Tests for the FEC classifier."""

import pytest

from repro.branch.bpu import MispredictKind
from repro.core.fec import FECClassifier, TriggerType
from repro.frontend.ftq import FTQEntry
from repro.workloads.layout import BasicBlock


def entry(bid=0, missed=None, pending=None, starvation=0,
          backend_starved=False, since_resteer=1):
    block = BasicBlock(bid=bid, addr=0x1000 + bid * 64, num_instructions=4)
    e = FTQEntry(block=block, lines=block.lines(), enqueue_cycle=0)
    e.missed_lines = list(missed or [])
    e.pending_lines = list(pending or [])
    e.starvation_cycles = starvation
    e.backend_starved = backend_starved
    e.entries_since_resteer = since_resteer
    return e


class TestQualification:
    def test_no_miss_no_event(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(starvation=20),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert events == []

    def test_no_starvation_no_event(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(missed=[70], starvation=0),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert events == []

    def test_miss_plus_starvation_qualifies(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(missed=[70], starvation=8),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert len(events) == 1
        assert events[0].line == 70
        assert events[0].starvation_cycles == 8
        assert 70 in fec.fec_lines

    def test_pending_lines_qualify(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(pending=[71], starvation=4),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert [e.line for e in events] == [71]

    def test_duplicate_lines_deduped(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(missed=[70], pending=[70], starvation=4),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert len(events) == 1


class TestTriggerAttribution:
    def test_in_wake_uses_resteer_trigger(self):
        fec = FECClassifier(wake_window=24)
        events = fec.on_retire(
            entry(missed=[70], starvation=4, since_resteer=3),
            MispredictKind.COND_MISPREDICT, 55, 99)
        assert events[0].trigger_type is TriggerType.MISPREDICT
        assert events[0].trigger_line == 55
        assert events[0].resteer_kind is MispredictKind.COND_MISPREDICT

    def test_btb_miss_wake_labeled(self):
        fec = FECClassifier()
        events = fec.on_retire(
            entry(missed=[70], starvation=4, since_resteer=3),
            MispredictKind.BTB_MISS, 55, 99)
        assert events[0].trigger_type is TriggerType.BTB_MISS

    def test_outside_wake_uses_last_taken(self):
        fec = FECClassifier(wake_window=24)
        events = fec.on_retire(
            entry(missed=[70], starvation=4, since_resteer=100),
            MispredictKind.COND_MISPREDICT, 55, 99)
        assert events[0].trigger_type is TriggerType.LAST_TAKEN
        assert events[0].trigger_line == 99
        assert events[0].resteer_kind is None

    def test_no_resteer_info_uses_last_taken(self):
        fec = FECClassifier()
        events = fec.on_retire(
            entry(missed=[70], starvation=4, since_resteer=3),
            None, None, 99)
        assert events[0].trigger_type is TriggerType.LAST_TAKEN


class TestHighCost:
    def test_high_cost_threshold(self):
        fec = FECClassifier(high_cost_threshold=10)
        fec.on_retire(entry(missed=[70], starvation=11, backend_starved=True),
                      MispredictKind.COND_MISPREDICT, 5, None)
        fec.on_retire(entry(missed=[71], starvation=9, backend_starved=True),
                      MispredictKind.COND_MISPREDICT, 5, None)
        assert fec.high_cost_events == 1
        assert fec.high_cost_backend_events == 1

    def test_backend_flag_required_for_backend_count(self):
        fec = FECClassifier(high_cost_threshold=10)
        fec.on_retire(entry(missed=[70], starvation=20, backend_starved=False),
                      MispredictKind.COND_MISPREDICT, 5, None)
        assert fec.high_cost_events == 1
        assert fec.high_cost_backend_events == 0

    def test_event_is_high_cost_helper(self):
        fec = FECClassifier()
        events = fec.on_retire(entry(missed=[70], starvation=15),
                               MispredictKind.COND_MISPREDICT, 5, None)
        assert events[0].is_high_cost(10)
        assert not events[0].is_high_cost(20)


class TestStatistics:
    def test_fraction_tracking(self):
        fec = FECClassifier()
        fec.on_retire(entry(bid=0, missed=[64], starvation=5),
                      MispredictKind.COND_MISPREDICT, 5, None)
        fec.on_retire(entry(bid=1), None, None, None)
        fec.on_retire(entry(bid=2), None, None, None)
        assert 0.0 < fec.fec_line_fraction() < 1.0

    def test_starvation_accumulates(self):
        fec = FECClassifier()
        fec.on_retire(entry(missed=[70], starvation=5),
                      MispredictKind.COND_MISPREDICT, 5, None)
        fec.on_retire(entry(missed=[71], starvation=7),
                      MispredictKind.COND_MISPREDICT, 5, None)
        assert fec.fec_starvation_cycles == 12

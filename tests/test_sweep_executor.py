"""Incremental sweep execution: warm skips, dirty sets, state, reports.

The two tests ISSUE-level acceptance hangs on live here:

* ``test_warm_rerun_performs_zero_simulations`` — a second run of an
  unchanged sweep resolves every cell from the durable store; the
  store's ``hits`` counter (which only ``get`` bumps) proves each cell
  cost exactly one index lookup and zero simulations.
* ``test_config_edit_reexecutes_exactly_dirty_cells`` — flipping one
  MachineConfig field re-runs only the cells whose run keys it touched;
  every other cell stays warm.
"""

from __future__ import annotations

import json

import pytest

from repro.service.store import ResultStore
from repro.simulator import cache as result_cache
from repro.simulator.runner import run_benchmark, run_suite_parallel
from repro.sweeps import (
    compile_spec,
    load_state,
    parse_spec,
    run_sweep,
    sweep_state_path,
)

SPEC = {
    "name": "exec",
    "axes": {
        "benchmark": ["noop", "tatp"],
        "policy": ["baseline", "pdip_44"],
    },
    "defaults": {"instructions": 2000, "warmup": 300},
}


@pytest.fixture
def sandbox(tmp_path, monkeypatch):
    """Isolated result cache + manifest-free runs; returns a fresh store."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return ResultStore(tmp_path / "store")


def plan_for(data=SPEC, **edits):
    merged = json.loads(json.dumps(data))
    for key, value in edits.items():
        merged[key] = value
    return compile_spec(parse_spec(merged))


class TestIncremental:
    def test_cold_run_executes_everything(self, sandbox):
        plan = plan_for()
        report = run_sweep(plan, store=sandbox, jobs=2, state_path="")
        assert report.counts == {"total": 4, "store": 0, "cache": 0,
                                 "executed": 4, "failed": 0}
        # every cell landed in the store under its plan key
        for cell in plan.cells:
            assert cell.key in sandbox

    def test_warm_rerun_performs_zero_simulations(self, sandbox):
        plan = plan_for()
        run_sweep(plan, store=sandbox, jobs=2, state_path="")
        before = sandbox.info()
        assert before["hits"] == 0  # puts and __contains__ don't count hits

        report = run_sweep(plan, store=sandbox, jobs=2, state_path="")

        assert report.counts == {"total": 4, "store": 4, "cache": 0,
                                 "executed": 0, "failed": 0}
        after = sandbox.info()
        assert after["hits"] == before["hits"] + len(plan.cells)
        assert after["rows"] == before["rows"]  # nothing new computed

    def test_store_checked_before_local_cache(self, sandbox):
        # Both layers are warm after a run; the store must win so the
        # hit counter stays an accurate zero-simulation witness.
        plan = plan_for()
        run_sweep(plan, store=sandbox, jobs=2, state_path="")
        report = run_sweep(plan, store=sandbox, jobs=2, state_path="")
        assert report.counts["store"] == 4
        assert report.counts["cache"] == 0

    def test_cache_resolves_without_a_store(self, sandbox):
        plan = plan_for()
        run_sweep(plan, store=sandbox, jobs=2, state_path="")
        report = run_sweep(plan, store=None, jobs=2, state_path="")
        assert report.counts == {"total": 4, "store": 0, "cache": 4,
                                 "executed": 0, "failed": 0}

    def test_config_edit_reexecutes_exactly_dirty_cells(self, sandbox):
        base = plan_for()
        run_sweep(base, store=sandbox, jobs=2, state_path="")

        edited = plan_for(axes={
            "benchmark": ["noop", "tatp"],
            "policy": ["baseline", "pdip_44"],
            "config": [{"label": "small", "btb_entries": 2048},
                       {"label": "default"}],
        })
        assert len(edited.cells) == 8
        report = run_sweep(edited, store=sandbox, jobs=2, state_path="")

        # the 4 default-config cells are warm; only the 4 new-key cells ran
        assert report.counts == {"total": 8, "store": 4, "cache": 0,
                                 "executed": 4, "failed": 0}
        for key, (cell, source, _, _, _) in report.outcomes.items():
            expected = "store" if cell.config_label == "default" else "executed"
            assert source == expected, cell.describe()

    def test_sweep_stats_bit_identical_to_suite_runner(self, sandbox):
        plan = plan_for()
        report = run_sweep(plan, store=sandbox, jobs=2, state_path="")
        suite = run_suite_parallel(
            ["baseline", "pdip_44"], benchmarks=["noop", "tatp"],
            instructions=2000, warmup=300, jobs=2)
        grid = report.results()
        for benchmark in ("noop", "tatp"):
            for policy in ("baseline", "pdip_44"):
                assert (grid[benchmark][policy].to_dict()
                        == suite[benchmark][policy].to_dict())


class TestState:
    def test_default_state_path_is_plan_addressed(self, sandbox):
        plan = plan_for()
        path = sweep_state_path(plan)
        assert plan.digest in path.name
        assert path.parent == result_cache.cache_dir() / "sweeps"

    def test_run_writes_resumable_state(self, sandbox):
        plan = plan_for()
        run_sweep(plan, store=sandbox, jobs=2)  # default state path
        state = load_state(sweep_state_path(plan), plan)
        assert state["plan_digest"] == plan.digest
        assert set(state["done"]) == {c.key for c in plan.cells}
        assert state["done"][plan.cells[0].key] == "executed"
        assert state["failed"] == {}
        # warm re-run rewrites sources as store resolutions
        run_sweep(plan, store=sandbox, jobs=2)
        state = load_state(sweep_state_path(plan), plan)
        assert set(state["done"].values()) == {"store"}

    def test_empty_state_path_disables_state(self, sandbox):
        plan = plan_for()
        run_sweep(plan, store=sandbox, jobs=2, state_path="")
        assert not sweep_state_path(plan).exists()

    def test_state_ignores_other_plans_and_corruption(self, sandbox, tmp_path):
        plan = plan_for()
        other = plan_for(name="other")
        path = tmp_path / "state.json"
        run_sweep(plan, store=sandbox, jobs=2, state_path=path)
        fresh = load_state(path, other)  # digest mismatch -> empty
        assert fresh["done"] == {} and fresh["plan_digest"] == other.digest
        path.write_text("{broken")
        assert load_state(path, plan)["done"] == {}


class TestReport:
    def test_report_json_artifact(self, sandbox, tmp_path):
        plan = plan_for()
        out = tmp_path / "report.json"
        run_sweep(plan, store=sandbox, jobs=2, state_path="",
                  report_path=out)
        data = json.loads(out.read_text())
        assert data["name"] == "exec"
        assert data["plan_digest"] == plan.digest
        assert data["counts"]["executed"] == 4
        assert len(data["cells"]) == 4
        row = data["cells"][0]
        assert set(row) >= {"benchmark", "policy", "key", "source",
                            "stats", "wall_time"}
        local = run_benchmark(row["benchmark"], row["policy"],
                              instructions=2000, warmup=300)
        assert row["stats"] == local.to_dict()

    def test_report_without_stats(self, sandbox, tmp_path):
        plan = plan_for()
        out = tmp_path / "lean.json"
        run_sweep(plan, store=sandbox, jobs=2, state_path="",
                  report_path=out, include_stats=False)
        data = json.loads(out.read_text())
        assert all("stats" not in row for row in data["cells"])

    def test_results_filters_by_config_label(self, sandbox):
        plan = plan_for(axes={
            "benchmark": ["noop"], "policy": ["baseline"],
            "config": [{"label": "small", "btb_entries": 2048},
                       {"label": "default"}],
        })
        report = run_sweep(plan, store=sandbox, jobs=2, state_path="")
        small = report.results(config_label="small")
        default = report.results(config_label="default")
        assert set(small) == set(default) == {"noop"}
        assert small["noop"]["baseline"] is not default["noop"]["baseline"]

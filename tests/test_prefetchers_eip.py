"""Tests for the EIP entangling prefetcher."""

import pytest

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetchers.eip import EIPConfig, EIPPrefetcher
from repro.workloads.layout import BasicBlock


def make_eip(**cfg_kw):
    hierarchy = MemoryHierarchy(config=HierarchyConfig())
    pq = PrefetchQueue(hierarchy)
    return EIPPrefetcher(pq, config=EIPConfig(**cfg_kw)), pq


def entry(lines, enqueue=0, ready=None, missed=None):
    block = BasicBlock(bid=0, addr=lines[0] * 64, num_instructions=4)
    e = FTQEntry(block=block, lines=list(lines), enqueue_cycle=enqueue)
    if ready is not None:
        e.line_ready = {ln: ready for ln in lines}
    if missed:
        e.missed_lines = list(missed)
    return e


class TestEntangling:
    def test_miss_entangles_with_history(self):
        eip, pq = make_eip()
        # commit a history of blocks at early cycles
        for i, ln in enumerate((10, 11, 12)):
            eip.on_retire(entry([ln], enqueue=i * 10), cycle=i * 10)
        # a block that missed with latency 25, fetched at cycle 40
        e = entry([50], enqueue=40, ready=65, missed=[50])
        eip.on_retire(e, cycle=70)
        assert eip.entangles == 1
        # src should be a history block fetched at or before cycle 15
        dsts = eip._lookup(10) + eip._lookup(11)
        assert 50 in dsts

    def test_no_miss_no_entangle(self):
        eip, pq = make_eip()
        eip.on_retire(entry([10], enqueue=0), cycle=0)
        eip.on_retire(entry([50], enqueue=40, ready=42), cycle=50)
        assert eip.entangles == 0

    def test_history_bounded(self):
        eip, pq = make_eip(history_entries=5)
        for i in range(20):
            eip.on_retire(entry([100 + i], enqueue=i), cycle=i)
        assert len(eip._history) == 5

    def test_self_entangle_avoided(self):
        eip, pq = make_eip()
        e = entry([50], enqueue=0, ready=30, missed=[50])
        eip.on_retire(e, cycle=10)
        assert 50 not in eip._lookup(50)


class TestLookupPrefetch:
    def _trained(self, analytical=False):
        eip, pq = make_eip(analytical=analytical)
        eip.on_retire(entry([10], enqueue=0), cycle=0)
        eip.on_retire(entry([50], enqueue=40, ready=70, missed=[50]),
                      cycle=80)
        return eip, pq

    def test_ftq_enqueue_triggers_prefetch(self):
        eip, pq = self._trained()
        eip.on_ftq_enqueue(entry([10]), cycle=100)
        assert eip.prefetch_requests == 1
        assert len(pq) == 1

    def test_unrelated_block_no_prefetch(self):
        eip, pq = self._trained()
        eip.on_ftq_enqueue(entry([77]), cycle=100)
        assert eip.prefetch_requests == 0

    def test_analytical_variant(self):
        eip, pq = self._trained(analytical=True)
        eip.on_ftq_enqueue(entry([10]), cycle=100)
        assert eip.prefetch_requests == 1


class TestBudgets:
    def test_budget_determines_ways(self):
        small = EIPPrefetcher(PrefetchQueue(
            MemoryHierarchy(config=HierarchyConfig())),
            config=EIPConfig(budget_kb=11.0))
        large = EIPPrefetcher(PrefetchQueue(
            MemoryHierarchy(config=HierarchyConfig())),
            config=EIPConfig(budget_kb=46.0))
        assert large.assoc > small.assoc
        assert small.storage_kb <= 11.0
        assert large.storage_kb <= 46.0

    def test_dst_cap_budgeted(self):
        eip, _ = make_eip(dsts_per_entry=2)
        for dst in (100, 101, 102):
            eip._entangle(10, dst)
        assert len(eip._lookup(10)) == 2
        assert 100 not in eip._lookup(10)  # oldest displaced

    def test_dst_cap_analytical(self):
        eip, _ = make_eip(analytical=True, analytical_dst_cap=3)
        for dst in range(100, 110):
            eip._entangle(10, dst)
        assert len(eip._lookup(10)) == 3

    def test_table_capacity_bounded(self):
        eip, _ = make_eip(budget_kb=2.0, num_sets=16)
        for src in range(1000):
            eip._entangle(src, src + 5000)
        resident = sum(len(w) for w in eip._sets.values())
        assert resident <= 16 * eip.assoc

    def test_analytical_storage_reports_footprint(self):
        eip, _ = make_eip(analytical=True)
        assert eip.storage_kb == 0.0
        eip._entangle(10, 100)
        assert eip.storage_kb > 0.0

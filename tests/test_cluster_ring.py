"""Property tests for the consistent-hash shard ring.

The cluster's warm-fleet claim rests on three :class:`HashRing`
properties, checked here with hypothesis over 1–16 workers:

* **balance** — with 128 virtual nodes per worker, no worker owns more
  than a small multiple of its fair share of keys;
* **minimal remapping** — adding a worker moves keys only *onto* it;
  removing a worker moves keys only *off* it; everything else stays
  put (this is what makes membership churn cheap);
* **insertion-order independence** — ownership is a pure function of
  the member set, so a coordinator restart or re-registration storm
  cannot silently reshuffle the shards.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.cluster import HashRing

names = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits,
            min_size=1, max_size=12),
    min_size=1, max_size=16, unique=True)

keys = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=40),
    min_size=1, max_size=200, unique=True)


def build(nodes):
    ring = HashRing()
    for node in nodes:
        ring.add(node)
    return ring


def owners(ring, key_list):
    return {k: ring.owner(k) for k in key_list}


class TestOwnership:
    @given(nodes=names, key=st.text(min_size=1, max_size=64))
    def test_owner_is_a_member(self, nodes, key):
        ring = build(nodes)
        assert ring.owner(key) in set(nodes)

    @given(nodes=names, key_list=keys)
    def test_ownership_is_insertion_order_independent(self, nodes,
                                                      key_list):
        forward = owners(build(nodes), key_list)
        backward = owners(build(list(reversed(nodes))), key_list)
        assert forward == backward

    @given(nodes=names)
    def test_add_remove_are_idempotent(self, nodes):
        ring = build(nodes)
        ring.add(nodes[0])
        assert sorted(ring.nodes) == sorted(nodes)
        ring.remove("not-a-member")
        assert sorted(ring.nodes) == sorted(nodes)

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert ring.preference("anything") == []


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(nodes=names)
    def test_load_within_tolerance(self, nodes):
        """2000 keys over 1-16 workers: no worker is a hot shard.

        With 128 virtual points per node the per-node load has a
        relative standard deviation around 1/sqrt(128) ~ 9%, so a
        2.5x-mean ceiling and a mean/4 floor are far outside honest
        variation but catch any structural imbalance.
        """
        ring = build(nodes)
        counts = {n: 0 for n in nodes}
        for i in range(2000):
            counts[ring.owner("key-%d" % i)] += 1
        mean = 2000 / len(nodes)
        assert max(counts.values()) <= 2.5 * mean
        assert min(counts.values()) >= mean / 4


class TestMinimalRemap:
    @settings(max_examples=50, deadline=None)
    @given(nodes=names, key_list=keys,
           newcomer=st.text(alphabet=string.ascii_uppercase,
                            min_size=1, max_size=12))
    def test_join_remaps_only_onto_newcomer(self, nodes, key_list,
                                            newcomer):
        ring = build(nodes)
        before = owners(ring, key_list)
        ring.add(newcomer)
        after = owners(ring, key_list)
        for key in key_list:
            if after[key] != before[key]:
                assert after[key] == newcomer

    @settings(max_examples=50, deadline=None)
    @given(nodes=names, key_list=keys, data=st.data())
    def test_leave_remaps_only_keys_of_the_leaver(self, nodes, key_list,
                                                  data):
        ring = build(nodes)
        leaver = data.draw(st.sampled_from(nodes))
        before = owners(ring, key_list)
        ring.remove(leaver)
        if len(nodes) == 1:
            assert all(ring.owner(k) is None for k in key_list)
            return
        after = owners(ring, key_list)
        for key in key_list:
            if before[key] == leaver:
                assert after[key] != leaver
            else:
                assert after[key] == before[key]

    @settings(max_examples=25, deadline=None)
    @given(nodes=names, key_list=keys,
           newcomer=st.text(alphabet=string.ascii_uppercase,
                            min_size=1, max_size=12))
    def test_join_then_leave_is_identity(self, nodes, key_list, newcomer):
        ring = build(nodes)
        before = owners(ring, key_list)
        ring.add(newcomer)
        ring.remove(newcomer)
        assert owners(ring, key_list) == before

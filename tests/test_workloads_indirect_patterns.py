"""Statistical tests of the indirect-dispatch pattern machinery.

The indirect model is what makes ITTAGE-predictability and path
diversity coexist (DESIGN.md §8); these tests pin its distributional
contracts so profile tuning cannot silently break them.
"""

import random
from collections import Counter

import pytest

from repro.utils import derive_rng
from repro.workloads.generator import _cumulative, _make_pattern, _zipf_weights
from repro.workloads.layout import BranchKind
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import PathWalker


class TestMakePattern:
    def test_single_target_is_monomorphic(self):
        rng = random.Random(1)
        pattern = _make_pattern(1, (1.0,), rng, mono_frac=0.0)
        assert pattern == (0,)

    def test_mono_frac_one_gives_single_element(self):
        rng = random.Random(1)
        for _ in range(20):
            pattern = _make_pattern(5, _cumulative([1] * 5), rng,
                                    mono_frac=1.0)
            assert len(pattern) == 1

    def test_polymorphic_has_dominant_run(self):
        rng = random.Random(2)
        seen_poly = 0
        for _ in range(50):
            pattern = _make_pattern(4, _cumulative([1] * 4), rng,
                                    mono_frac=0.0)
            assert len(pattern) >= 4  # run of >=3 plus an excursion
            counts = Counter(pattern)
            dominant, dom_count = counts.most_common(1)[0]
            assert dom_count >= len(pattern) - 2
            if len(counts) > 1:
                seen_poly += 1
        assert seen_poly == 50  # mono_frac=0 always polymorphic

    def test_indices_in_range(self):
        rng = random.Random(3)
        for n in (2, 3, 8):
            pattern = _make_pattern(n, _cumulative([1] * n), rng,
                                    mono_frac=0.0)
            assert all(0 <= i < n for i in pattern)


class TestZipfWeights:
    def test_count(self):
        assert len(_zipf_weights(10, 0.5, random.Random(1))) == 10

    def test_flat_alpha_zero(self):
        w = _zipf_weights(5, 0.0, random.Random(1))
        assert all(x == w[0] for x in w)

    def test_skew_increases_with_alpha(self):
        flat = sorted(_zipf_weights(20, 0.1, random.Random(1)))
        skewed = sorted(_zipf_weights(20, 1.5, random.Random(1)))
        assert (skewed[-1] / skewed[0]) > (flat[-1] / flat[0])

    def test_cumulative_ends_at_one(self):
        cum = _cumulative(_zipf_weights(7, 0.7, random.Random(1)))
        assert cum[-1] == pytest.approx(1.0)
        assert list(cum) == sorted(cum)


class TestDynamicFrequencies:
    def test_noise_rate_observed(self):
        """With noise p, roughly p of indirect executions deviate from
        the pattern."""
        profile = WorkloadProfile(name="noise-test", num_functions=60,
                                  num_handlers=8, num_leaves=10,
                                  call_depth=3, indirect_mono_frac=0.0)
        layout = generate_layout(profile, seed=3)
        walker = PathWalker(layout, seed=3, indirect_noise=0.3)
        expected = {}
        deviations = 0
        total = 0
        positions = {}
        for _ in range(30_000):
            ev = walker.next_event()
            blk = ev.block
            if blk.kind not in (BranchKind.INDIRECT,
                                BranchKind.INDIRECT_CALL):
                continue
            pos = positions.get(blk.bid, 0)
            want = blk.indirect_targets[
                blk.indirect_pattern[pos % len(blk.indirect_pattern)]]
            total += 1
            # the walker advances its own pattern pointer only when it
            # follows the pattern, so track deviations loosely: a draw
            # that differs from every pattern continuation is noise
            if ev.next_bid != want:
                deviations += 1
                positions[blk.bid] = pos  # pointer did not advance
            else:
                positions[blk.bid] = pos + 1
        assert total > 200
        assert 0.1 < deviations / total < 0.6

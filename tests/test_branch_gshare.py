"""Tests for the gshare conditional predictor."""

import pytest

from repro.branch.bpu import BranchPredictionUnit
from repro.branch.gshare import GsharePredictor


class TestGshare:
    def test_learns_bias(self):
        g = GsharePredictor(log_entries=10, history_bits=6)
        for _ in range(30):
            pred = g.predict(0x1000)
            g.update(0x1000, True, pred)
        assert g.predict(0x1000) is True

    def test_learns_alternation_via_history(self):
        g = GsharePredictor(log_entries=12, history_bits=8)
        pattern = [True, False] * 200
        correct = 0
        for i, taken in enumerate(pattern):
            pred = g.predict(0x1000)
            if i >= 100:
                correct += (pred == taken)
            g.update(0x1000, taken, pred)
        assert correct / 300 > 0.9

    def test_mispredict_rate(self):
        g = GsharePredictor()
        pred = g.predict(0x100)
        g.update(0x100, not pred, pred)
        assert g.mispredicts == 1
        assert g.mispredict_rate() == 1.0

    def test_storage(self):
        g = GsharePredictor(log_entries=14)
        assert g.storage_kb == pytest.approx(4.0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            GsharePredictor(log_entries=0)

    def test_swaps_into_bpu(self):
        """The BPU accepts any predict/update-shaped conditional
        predictor (Section 7.6 BPU-sensitivity methodology)."""
        bpu = BranchPredictionUnit(btb_entries=256, btb_assoc=4, seed=1,
                                   tage=GsharePredictor())
        from repro.workloads.layout import BasicBlock, BranchKind

        blk = BasicBlock(bid=0, addr=0x1000, num_instructions=4,
                         kind=BranchKind.COND, taken_target=1, fallthrough=2)
        mis = 0
        for i in range(50):
            result = bpu.predict_block(blk, True, 0x2000)
            if i > 10 and result.mispredict.is_resteer:
                mis += 1
        assert mis <= 2

    def test_machine_runs_with_gshare(self):
        from repro.branch.bpu import BranchPredictionUnit
        from repro.simulator.machine import Machine
        from repro.workloads.generator import generate_layout
        from repro.workloads.profiles import WorkloadProfile

        profile = WorkloadProfile(name="gshare-test", num_functions=50,
                                  num_handlers=6, num_leaves=8, call_depth=3)
        layout = generate_layout(profile, seed=1)
        bpu = BranchPredictionUnit(seed=1, tage=GsharePredictor())
        machine = Machine(layout, profile, bpu=bpu, seed=1)
        stats = machine.run(4000, warmup=800)
        assert stats.instructions >= 4000

"""Bundled traces as first-class benchmarks: registry, e2e, integration.

The expensive end-to-end cells use the smallest budgets that still
exercise the replayer-driven frontend; the central contract — ref and
fast backends bit-identical over an ingested trace — is asserted here
and again (at larger budgets) by the CI ``ingest-smoke`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.simulator.config import MachineConfig
from repro.simulator.runner import get_layout, run_benchmark
from repro.traces.registry import DATA_DIR, trace_benchmark_names
from repro.traces.synthesize import TraceProfile
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    external_benchmark,
    get_profile,
    known_benchmark_names,
)

BUNDLED = sorted(trace_benchmark_names())

pytestmark = pytest.mark.skipif(
    not BUNDLED, reason="bundled traces unavailable in this checkout")


class TestRegistry:
    def test_bundled_names_are_known_benchmarks(self):
        known = known_benchmark_names()
        for name in BUNDLED:
            assert name in known
        # and the synthetic catalog is untouched
        assert known[:len(BENCHMARK_NAMES)] == BENCHMARK_NAMES

    def test_profiles_pin_the_manifest_digests(self):
        manifest = json.loads(
            (Path(DATA_DIR) / "bundled.json").read_text())
        for name in BUNDLED:
            profile = get_profile(name)
            assert isinstance(profile, TraceProfile)
            assert profile.trace_digest == manifest[name]["digest"]
            assert profile.trace_events == manifest[name]["events"]

    def test_synthetic_names_never_hit_the_provider(self):
        assert external_benchmark("tatp") is None

    def test_unknown_name_lists_trace_benchmarks(self):
        with pytest.raises(KeyError) as exc:
            get_profile("no-such-benchmark")
        for name in BUNDLED:
            assert name in str(exc.value)

    def test_layout_is_seed_invariant(self):
        name = BUNDLED[0]
        a = get_layout(name, seed=1)
        b = get_layout(name, seed=2)
        assert a is b  # one observed binary, whatever the machine seed

    def test_walker_replays_the_synthesised_stream(self):
        name = BUNDLED[0]
        ext = external_benchmark(name)
        layout = ext.layout_builder(1)
        walker = ext.walker_factory(layout, 1)
        ev = walker.next_event()
        assert layout.blocks[ev.block.bid] is ev.block


class TestEndToEnd:
    BUDGET = dict(instructions=8_000, warmup=2_000, seed=1,
                  use_cache=False)

    @pytest.mark.parametrize("policy", ["baseline", "pdip_44"])
    def test_ref_and_fast_are_bit_identical(self, policy):
        name = BUNDLED[0]
        ref = run_benchmark(name, policy,
                            config=MachineConfig(backend="ref"),
                            **self.BUDGET)
        fast = run_benchmark(name, policy,
                             config=MachineConfig(backend="fast"),
                             **self.BUDGET)
        assert dict(ref.counters()) == dict(fast.counters())

    def test_run_produces_misses_worth_prefetching(self):
        # a bundled trace that fits L1-I entirely would make every PDIP
        # study over it vacuous; guard the footprint stays meaningful
        stats = run_benchmark(BUNDLED[0], "baseline", **self.BUDGET)
        assert stats.l1i_mpki > 1.0


class TestIntegration:
    def test_sweep_spec_accepts_trace_benchmarks(self):
        from repro.sweeps import compile_spec, parse_spec

        spec = parse_spec({
            "axes": {"benchmark": [BUNDLED[0], "noop"],
                     "policy": ["baseline"]},
            "defaults": {"instructions": 10_000, "warmup": 2_000},
        })
        plan = compile_spec(spec)
        assert {c.payload()["benchmark"] for c in plan.cells} == \
            {BUNDLED[0], "noop"}

    def test_sweep_spec_all_stays_synthetic(self):
        # "all" deliberately excludes trace benchmarks so existing plan
        # digests stay stable as traces come and go
        from repro.sweeps import parse_spec

        spec = parse_spec({"axes": {"benchmark": "all",
                                    "policy": ["baseline"]}})
        assert spec.benchmarks == BENCHMARK_NAMES

    def test_sweep_spec_still_rejects_unknown(self):
        from repro.sweeps import SweepSpecError, parse_spec

        with pytest.raises(SweepSpecError):
            parse_spec({"axes": {"benchmark": ["definitely-not-real"],
                                 "policy": ["baseline"]}})

    def test_service_submission_accepts_trace_benchmarks(self):
        from repro.service.jobs import normalize_submission

        payload = normalize_submission({"benchmark": BUNDLED[0],
                                        "policy": "baseline"})
        assert payload["benchmark"] == BUNDLED[0]
        with pytest.raises(ValueError):
            normalize_submission({"benchmark": "definitely-not-real",
                                  "policy": "baseline"})

    def test_cli_exposes_trace_benchmarks(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", BUNDLED[0], "baseline", "--no-cache"])
        assert args.benchmark == BUNDLED[0]

    def test_bench_cells_cover_trace_benchmarks(self):
        from repro.bench import DEFAULT_CELLS

        trace_cells = [c for c in DEFAULT_CELLS
                       if c.benchmark.startswith("trace-")]
        assert trace_cells, "bench grid lost its ingested-trace cells"

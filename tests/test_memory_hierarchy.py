"""Tests for the three-level memory hierarchy."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.replacement import EmissaryPolicy


def make_hierarchy(**kw):
    return MemoryHierarchy(config=HierarchyConfig(), **kw)


class TestInstructionPath:
    def test_cold_miss_goes_to_memory(self):
        h = make_hierarchy()
        r = h.fetch_instruction(100, cycle=0)
        assert r.l1_miss
        cfg = h.config
        expected = (cfg.l1_hit_latency + cfg.l2_hit_latency
                    + cfg.l3_hit_latency + cfg.memory_latency)
        assert r.ready_cycle == expected
        assert h.l1i_demand_misses == 1
        assert h.l2_inst_misses == 1
        assert h.l3_misses == 1

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        first = h.fetch_instruction(100, cycle=0)
        r = h.fetch_instruction(100, cycle=first.ready_cycle + 1)
        assert r.l1_hit
        assert r.ready_cycle == first.ready_cycle + 1 + h.config.l1_hit_latency

    def test_access_during_fill_merges(self):
        h = make_hierarchy()
        first = h.fetch_instruction(100, cycle=0)
        r = h.fetch_instruction(100, cycle=1)
        assert r.pending_hit
        assert not r.l1_miss  # MSHR merge, not a new miss
        assert r.ready_cycle == first.ready_cycle
        assert h.l1i_demand_misses == 1

    def test_l1_eviction_keeps_l2(self):
        h = make_hierarchy()
        # fill line 0, then thrash its L1 set; L2 must still hold it
        h.fetch_instruction(0, cycle=0)
        sets = h.l1i.num_sets
        for i in range(1, h.l1i.assoc + 1):
            h.fetch_instruction(i * sets, cycle=1000 + i)
        assert not h.l1i.probe(0)
        r = h.fetch_instruction(0, cycle=5000)
        assert r.l1_miss
        assert r.served_by == "l2"
        assert r.ready_cycle == 5000 + h.config.l1_hit_latency + h.config.l2_hit_latency

    def test_mshr_exhaustion_stalls_demand(self):
        h = make_hierarchy()
        for i in range(h.config.l1i_mshrs):
            h.fetch_instruction(1000 + i, cycle=0)
        r = h.fetch_instruction(5000, cycle=0)
        assert r.stalled_mshr

    def test_stalled_access_not_counted(self):
        h = make_hierarchy()
        for i in range(h.config.l1i_mshrs):
            h.fetch_instruction(1000 + i, cycle=0)
        before = h.l1i_demand_accesses
        h.fetch_instruction(5000, cycle=0)
        assert h.l1i_demand_accesses == before


class TestPrefetchPath:
    def test_prefetch_fills_l1(self):
        h = make_hierarchy()
        assert h.prefetch_instruction(100, cycle=0)
        assert h.l1i.probe(100)
        assert h.prefetches_issued == 1

    def test_prefetch_resident_is_noop(self):
        h = make_hierarchy()
        h.prefetch_instruction(100, cycle=0)
        assert not h.prefetch_instruction(100, cycle=0)
        assert h.prefetches_issued == 1

    def test_prefetch_respects_mshr_reserve(self):
        h = make_hierarchy()
        for i in range(h.config.l1i_mshrs - 2):
            h.fetch_instruction(1000 + i, cycle=0)
        assert not h.prefetch_instruction(5000, cycle=0, mshr_reserve=2)
        assert h.prefetches_dropped == 1

    def test_useful_prefetch_accounting(self):
        h = make_hierarchy()
        h.prefetch_instruction(100, cycle=0)
        ready = h.l1i.get_state(100).ready_cycle
        r = h.fetch_instruction(100, cycle=ready + 1)
        assert r.useful_prefetch
        assert h.prefetch_useful == 1

    def test_late_prefetch_accounting(self):
        h = make_hierarchy()
        h.prefetch_instruction(100, cycle=0)
        r = h.fetch_instruction(100, cycle=1)  # fill still in flight
        assert r.late_prefetch
        assert h.prefetch_late == 1
        assert h.prefetch_useful == 0

    def test_useless_prefetch_accounting(self):
        h = make_hierarchy()
        h.prefetch_instruction(0, cycle=0)
        # thrash line 0's L1 set without touching line 0
        sets = h.l1i.num_sets
        for i in range(1, h.l1i.assoc + 1):
            h.fetch_instruction(i * sets, cycle=1000 + i * 10)
        assert h.prefetch_useless == 1

    def test_zero_cost_prefetch_instant(self):
        h = make_hierarchy(zero_cost_prefetch=True)
        h.prefetch_instruction(100, cycle=7)
        assert h.l1i.get_state(100).ready_cycle == 7


class TestFecIdeal:
    def test_fec_line_served_at_l1_latency(self):
        h = make_hierarchy(fec_ideal=True)
        h.fec_lines.add(100)
        r = h.fetch_instruction(100, cycle=0)
        assert r.served_by == "fec_ideal"
        assert r.ready_cycle == h.config.l1_hit_latency

    def test_non_fec_line_normal_latency(self):
        h = make_hierarchy(fec_ideal=True)
        r = h.fetch_instruction(100, cycle=0)
        assert r.served_by != "fec_ideal"
        assert r.ready_cycle > h.config.l1_hit_latency

    def test_promote_fec_populates_set(self):
        h = make_hierarchy(fec_ideal=True)
        h.fetch_instruction(100, cycle=0)
        h.promote_fec(100)
        assert 100 in h.fec_lines


class TestDataPath:
    def test_data_miss_then_hit(self):
        h = make_hierarchy()
        ready, hit = h.data_access(7_000_000, cycle=0)
        assert not hit
        ready2, hit2 = h.data_access(7_000_000, cycle=ready + 1)
        assert hit2
        assert h.l2_data_misses == 1

    def test_data_contends_with_instructions(self):
        """Filling the L2 with data evicts instruction lines."""
        h = make_hierarchy()
        h.fetch_instruction(0, cycle=0)
        assert h.l2.probe(0)
        l2_lines = h.l2.num_sets * h.l2.assoc
        for i in range(2 * l2_lines):
            h.data_access((1 << 30) + i * h.l2.num_sets // h.l2.num_sets + i, cycle=i)
        assert not h.l2.probe(0)


class TestEmissaryIntegration:
    def test_promoted_line_survives_data_flood(self):
        policy = EmissaryPolicy(promote_prob=1.0, seed=1)
        h = make_hierarchy(l2_policy=policy)
        h.fetch_instruction(0, cycle=0)
        assert h.promote_fec(0)
        # flood line 0's L2 set with data lines
        sets = h.l2.num_sets
        for i in range(1, 3 * h.l2.assoc):
            h.data_access(i * sets, cycle=10 + i)
        assert h.l2.probe(0)

    def test_unpromoted_line_evicted_by_flood(self):
        h = make_hierarchy()
        h.fetch_instruction(0, cycle=0)
        sets = h.l2.num_sets
        for i in range(1, 3 * h.l2.assoc):
            h.data_access(i * sets, cycle=10 + i)
        assert not h.l2.probe(0)

"""Tests for derived statistics."""

import pytest

from repro.simulator.stats import SimulationStats


def stats(**kw):
    s = SimulationStats()
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestIPC:
    def test_ipc(self):
        assert stats(instructions=200, cycles=100).ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert stats().ipc == 0.0


class TestMPKI:
    def test_l1i_mpki(self):
        s = stats(instructions=10_000, l1i_misses=500)
        assert s.l1i_mpki == 50.0

    def test_all_levels(self):
        s = stats(instructions=1000, l1i_misses=10, l2_inst_misses=5,
                  l2_data_misses=3, l3_misses=1)
        assert s.l1i_mpki == 10.0
        assert s.l2i_mpki == 5.0
        assert s.l2d_mpki == 3.0
        assert s.l3_mpki == 1.0

    def test_zero_instructions(self):
        assert stats(l1i_misses=10).l1i_mpki == 0.0


class TestPrefetchMetrics:
    def test_ppki(self):
        assert stats(instructions=1000, prefetches_issued=32).ppki == 32.0

    def test_accuracy(self):
        s = stats(prefetch_useful=40, prefetch_late=10, prefetch_useless=50)
        assert s.prefetch_accuracy == pytest.approx(0.5)

    def test_accuracy_no_resolved(self):
        assert stats().prefetch_accuracy == 0.0

    def test_late_fraction(self):
        s = stats(prefetches_issued=100, prefetch_late=13)
        assert s.prefetch_late_fraction == pytest.approx(0.13)


class TestTopdown:
    def test_fractions(self):
        s = stats(slots_total=100, slots_retiring=20,
                  slots_frontend_bound=50, slots_bad_speculation=10,
                  slots_backend_bound=20)
        td = s.topdown
        assert td["retiring"] == pytest.approx(0.2)
        assert td["frontend_bound"] == pytest.approx(0.5)
        assert sum(td.values()) == pytest.approx(1.0)


class TestFECMetrics:
    def test_line_fraction(self):
        s = stats(fec_distinct_lines=10, retired_distinct_lines=100)
        assert s.fec_line_fraction == pytest.approx(0.1)

    def test_starvation_fraction_capped(self):
        s = stats(fec_starvation_cycles=120, decode_starvation_cycles=100)
        assert s.fec_starvation_fraction == 1.0

    def test_coverage(self):
        s = stats(fec_events=10, fec_covered_events=7)
        assert s.fec_coverage == pytest.approx(0.7)

    def test_summary_renders(self):
        assert "IPC" in stats(instructions=10, cycles=10).summary()

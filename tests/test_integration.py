"""Integration tests: whole-machine behaviours across modules.

These use a mid-sized synthetic workload and moderate instruction budgets
(tens of thousands), enough for the mechanisms to engage without making
the suite slow. Assertions are directional (PDIP reduces FEC stalls, the
oracle beats everything, prefetchers actually prefetch) rather than
bit-exact.
"""

import pytest

from repro.simulator.config import MachineConfig
from repro.simulator.policies import PolicySpec, build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

#: a miss-heavy but quick profile (cassandra-like, shrunk ~3x)
HEAVY = WorkloadProfile(
    name="itest-heavy", num_functions=600, num_handlers=48, num_leaves=30,
    call_depth=6, call_sites_mean=2.0, tier_growth=1.25,
    indirect_call_frac=0.4, indirect_call_fanout=6,
    leaf_call_frac=0.08, loop_back_prob=0.06,
    handler_zipf_alpha=0.15, callee_zipf_alpha=0.15,
    backend_stall_prob=0.10, data_access_prob=0.04, data_lines=1500,
)

N, WARM = 60_000, 30_000


@pytest.fixture(scope="module")
def layout():
    return generate_layout(HEAVY, seed=5)


def run(layout, policy, seed=5, config=None, **overrides):
    if isinstance(policy, str):
        spec = get_policy(policy)
    else:
        spec = policy
    machine = build_machine(layout, HEAVY, spec, config=config, seed=seed)
    stats = machine.run(N, warmup=WARM)
    return machine, stats


@pytest.fixture(scope="module")
def baseline(layout):
    return run(layout, "baseline")[1]


class TestBaselineRegime:
    """The substrate must sit in the paper's front-end-bound regime."""

    def test_miss_heavy(self, baseline):
        assert baseline.l1i_mpki > 20  # Section 6.3's selection threshold

    def test_frontend_bound_dominates(self, baseline):
        td = baseline.topdown
        assert td["frontend_bound"] > td["backend_bound"]
        assert td["frontend_bound"] > 0.3

    def test_fec_concentration(self, baseline):
        """A minority of lines causes the majority of starvation (Fig 4)."""
        assert baseline.fec_line_fraction < 0.6
        assert baseline.fec_starvation_fraction > 0.4
        assert baseline.fec_starvation_fraction > baseline.fec_line_fraction


class TestPDIPEndToEnd:
    def test_pdip_learns_and_prefetches(self, layout):
        machine, stats = run(layout, "pdip_44")
        assert machine.prefetcher.inserted_events > 0
        assert machine.prefetcher.table.hits > 0
        assert stats.prefetches_issued > 0

    def test_pdip_reduces_fec_starvation(self, layout, baseline):
        _, stats = run(layout, "pdip_44")
        assert stats.fec_starvation_cycles < baseline.fec_starvation_cycles

    def test_pdip_not_slower(self, layout, baseline):
        _, stats = run(layout, "pdip_44")
        assert stats.ipc > baseline.ipc * 0.995

    def test_prefetches_get_used(self, layout):
        _, stats = run(layout, "pdip_44")
        assert stats.prefetch_useful + stats.prefetch_late > 0

    def test_triggers_mostly_mispredicts(self, layout):
        """Fig 16: mispredict-family triggers dominate."""
        machine, _ = run(layout, "pdip_44")
        mis, last = machine.prefetcher.trigger_distribution()
        assert mis > last

    def test_bigger_table_not_worse(self, layout):
        _, small = run(layout, "pdip_11")
        _, large = run(layout, "pdip_87")
        assert large.ipc >= small.ipc * 0.99


class TestOracleOrdering:
    def test_fec_ideal_beats_baseline(self, layout, baseline):
        _, stats = run(layout, "fec_ideal")
        assert stats.ipc > baseline.ipc * 1.01

    def test_fec_ideal_beats_pdip(self, layout):
        _, pdip = run(layout, "pdip_44")
        _, ideal = run(layout, "fec_ideal")
        assert ideal.ipc > pdip.ipc

    def test_zero_cost_at_least_as_good(self, layout):
        _, real = run(layout, "pdip_44")
        _, zero = run(layout, "pdip_44_zero_cost")
        assert zero.prefetch_late == 0
        assert zero.ipc >= real.ipc * 0.99


class TestEIP:
    def test_eip_prefetches(self, layout):
        machine, stats = run(layout, "eip_46")
        assert machine.prefetcher.entangles > 0
        assert stats.prefetches_issued > 0

    def test_analytical_issues_more(self, layout):
        _, budgeted = run(layout, "eip_46")
        _, analytical = run(layout, "eip_analytical")
        assert analytical.ppki >= budgeted.ppki


class TestEmissary:
    def test_emissary_protects_l2_instruction_lines(self, layout, baseline):
        _, stats = run(layout, "emissary")
        assert stats.l2_inst_misses <= baseline.l2_inst_misses

    def test_emissary_promotions_happen(self, layout):
        machine, _ = run(layout, "emissary")
        assert machine.hierarchy.l2_policy.promotions > 0


class TestCacheSizeEffects:
    def test_2x_il1_reduces_l1_misses(self, layout, baseline):
        _, stats = run(layout, "2x_il1")
        assert stats.l1i_misses < baseline.l1i_misses

    def test_btb_scaling_reduces_btb_resteers(self, layout):
        _, small = run(layout, "baseline",
                       config=MachineConfig(btb_entries=1024))
        _, large = run(layout, "baseline",
                       config=MachineConfig(btb_entries=32768))
        assert large.resteers_btb_miss < small.resteers_btb_miss


class TestStatsConsistency:
    def test_prefetch_accounting_balances(self, layout):
        """Resolved prefetches never exceed issued ones."""
        _, stats = run(layout, "pdip_44")
        resolved = (stats.prefetch_useful + stats.prefetch_late
                    + stats.prefetch_useless)
        assert resolved <= stats.prefetches_issued

    def test_miss_hierarchy_sane(self, layout, baseline):
        """Inner levels see at most the outer level's misses (instruction
        side), modulo the data stream sharing L2/L3."""
        assert baseline.l2_inst_misses <= baseline.l1i_misses
        assert baseline.l1i_misses <= baseline.l1i_accesses

"""Tests for the policy catalog and machine assembly."""

import pytest

from repro.core.pdip import PDIPController
from repro.memory.replacement import EmissaryPolicy, LRUPolicy
from repro.prefetchers.base import NoPrefetcher
from repro.prefetchers.eip import EIPPrefetcher
from repro.simulator.policies import (
    PDIP_ASSOC_FOR_KB,
    POLICIES,
    PolicySpec,
    build_machine,
    build_machine_for,
    get_policy,
)
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

SMALL = WorkloadProfile(name="policy-test", num_functions=60,
                        num_handlers=8, num_leaves=10, call_depth=3)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(SMALL, seed=2)


class TestCatalog:
    def test_table3_policies_present(self):
        for name in ("baseline", "emissary", "pdip_44", "eip_analytical",
                     "eip_46", "2x_il1", "fec_ideal"):
            assert name in POLICIES

    def test_get_policy_unknown(self):
        with pytest.raises(KeyError):
            get_policy("bogus")

    def test_pdip_sizes(self):
        assert PDIP_ASSOC_FOR_KB == {11: 2, 22: 4, 44: 8, 87: 16}

    def test_prefetcher_storage(self):
        assert get_policy("pdip_44").prefetcher_storage_kb == pytest.approx(43.5)
        assert get_policy("eip_46").prefetcher_storage_kb == pytest.approx(46.0)
        assert get_policy("baseline").prefetcher_storage_kb == 0.0


class TestAssembly:
    def test_baseline(self, layout):
        m = build_machine(layout, SMALL, get_policy("baseline"), seed=1)
        assert isinstance(m.prefetcher, NoPrefetcher)
        assert isinstance(m.hierarchy.l2_policy, LRUPolicy)
        assert not m.hierarchy.fec_ideal

    def test_pdip(self, layout):
        m = build_machine(layout, SMALL, get_policy("pdip_44"), seed=1)
        assert isinstance(m.prefetcher, PDIPController)
        assert m.prefetcher.table.assoc == 8

    def test_pdip_sizes_assembled(self, layout):
        for kb, assoc in PDIP_ASSOC_FOR_KB.items():
            m = build_machine(layout, SMALL, get_policy("pdip_%d" % kb),
                              seed=1)
            assert m.prefetcher.table.assoc == assoc

    def test_eip(self, layout):
        m = build_machine(layout, SMALL, get_policy("eip_46"), seed=1)
        assert isinstance(m.prefetcher, EIPPrefetcher)
        assert not m.prefetcher.config.analytical

    def test_eip_analytical(self, layout):
        m = build_machine(layout, SMALL, get_policy("eip_analytical"), seed=1)
        assert m.prefetcher.config.analytical

    def test_emissary(self, layout):
        m = build_machine(layout, SMALL, get_policy("emissary"), seed=1)
        assert isinstance(m.hierarchy.l2_policy, EmissaryPolicy)

    def test_fec_ideal(self, layout):
        m = build_machine(layout, SMALL, get_policy("fec_ideal"), seed=1)
        assert m.hierarchy.fec_ideal
        assert isinstance(m.hierarchy.l2_policy, EmissaryPolicy)

    def test_zero_cost(self, layout):
        m = build_machine(layout, SMALL, get_policy("pdip_44_zero_cost"),
                          seed=1)
        assert m.hierarchy.zero_cost_prefetch

    def test_2x_il1(self, layout):
        base = build_machine(layout, SMALL, get_policy("baseline"), seed=1)
        big = build_machine(layout, SMALL, get_policy("2x_il1"), seed=1)
        assert (big.hierarchy.config.l1i_size_kb
                == 2 * base.hierarchy.config.l1i_size_kb)

    def test_pdip_overrides(self, layout):
        spec = PolicySpec("custom", "c", pdip_kb=44,
                          pdip_overrides={"insert_prob": 0.5})
        m = build_machine(layout, SMALL, spec, seed=1)
        assert m.prefetcher.config.insert_prob == 0.5
        assert m.prefetcher.table.assoc == 8  # default still applied

    def test_build_machine_for(self):
        m = build_machine_for(SMALL, get_policy("baseline"), seed=1)
        stats = m.run(1500, warmup=300)
        assert stats.instructions >= 1500

"""Tests for the prefetch queue."""

import pytest

from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(config=HierarchyConfig())


@pytest.fixture
def pq(hierarchy):
    return PrefetchQueue(hierarchy, capacity=4, issue_width=2,
                         mshr_reserve=2)


class TestRequest:
    def test_enqueue(self, pq):
        assert pq.request(100)
        assert len(pq) == 1

    def test_duplicate_dropped(self, pq):
        pq.request(100)
        assert not pq.request(100)
        assert len(pq) == 1

    def test_full_drops(self, pq):
        for i in range(4):
            assert pq.request(100 + i)
        assert not pq.request(999)
        assert pq.dropped_full == 1


class TestTick:
    def test_issues_up_to_width(self, pq, hierarchy):
        for i in range(4):
            pq.request(100 + i)
        assert pq.tick(cycle=0) == 2
        assert len(pq) == 2
        assert hierarchy.prefetches_issued == 2

    def test_resident_lines_filtered(self, pq, hierarchy):
        hierarchy.fetch_instruction(100, cycle=0)
        pq.request(100)
        assert pq.tick(cycle=1000) == 0
        assert pq.filtered_resident == 1

    def test_mshr_pressure_drops(self, pq, hierarchy):
        # consume MSHRs down to the reserve
        for i in range(hierarchy.config.l1i_mshrs - 2):
            hierarchy.fetch_instruction(1000 + i, cycle=0)
        pq.request(100)
        assert pq.tick(cycle=0) == 0
        assert hierarchy.prefetches_dropped == 1

    def test_flush(self, pq):
        for i in range(3):
            pq.request(100 + i)
        pq.flush()
        assert len(pq) == 0
        # the same line can be requested again after a flush
        assert pq.request(100)

"""Sweep spec parsing/validation and plan compilation.

The digest goldens at the bottom pin the spec → plan contract: the
canonical axis expansion order, the shape-row encoding, and the digest
seed tuple. They must only change with a deliberate schema bump —
a failing golden means previously-written sweep state files and
dashboard registrations silently stopped matching their specs.
"""

from __future__ import annotations

import json

import pytest

from repro.service.store import ResultStore
from repro.sweeps import (
    AXIS_NAMES,
    SweepSpecError,
    compile_spec,
    load_spec,
    parse_spec,
)
from repro.workloads import BENCHMARK_NAMES

# A small but representative spec: 2 benchmarks x 2 policies x 2 config
# variants with one excluded combination -> 6 cells. Used all over this
# file and pinned by the digest goldens.
GOLDEN_SPEC = {
    "name": "golden",
    "axes": {
        "benchmark": ["noop", "tatp"],
        "policy": ["baseline", "pdip_44"],
        "config": [
            {"label": "small", "btb_entries": 2048},
            {"label": "default"},
        ],
    },
    "defaults": {"instructions": 20000, "warmup": 4000},
    "exclude": [{"benchmark": "tatp", "config": "small"}],
}


class TestParse:
    def test_minimal_grid(self):
        spec = parse_spec({"axes": {"benchmark": ["noop"],
                                    "policy": ["baseline"]}})
        assert spec.name == "sweep"
        assert spec.benchmarks == ("noop",)
        assert spec.policies == ("baseline",)
        assert spec.seeds == (1,)
        assert spec.instructions == (400_000,)
        assert spec.warmups == (120_000,)
        assert [c.label for c in spec.configs] == ["default"]
        assert spec.grid_size == 1

    def test_benchmark_all_expands_registry(self):
        spec = parse_spec({"axes": {"benchmark": "all",
                                    "policy": ["baseline"]}})
        assert spec.benchmarks == tuple(BENCHMARK_NAMES)

    def test_scalar_axis_values_are_listified(self):
        spec = parse_spec({"axes": {"benchmark": "noop", "policy": "baseline",
                                    "seed": 3}})
        assert spec.benchmarks == ("noop",)
        assert spec.seeds == (3,)

    def test_defaults_override_budgets(self):
        spec = parse_spec(GOLDEN_SPEC)
        assert spec.instructions == (20000,)
        assert spec.warmups == (4000,)

    def test_unknown_benchmark_rejected_with_path(self):
        with pytest.raises(SweepSpecError, match=r"axes\.benchmark\[1\]"):
            parse_spec({"axes": {"benchmark": ["noop", "nope"],
                                 "policy": ["baseline"]}})

    def test_unknown_policy_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown policy"):
            parse_spec({"axes": {"benchmark": ["noop"],
                                 "policy": ["not_a_policy"]}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown top-level"):
            parse_spec({"axes": {"benchmark": ["noop"],
                                 "policy": ["baseline"]}, "extra": 1})

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown axes"):
            parse_spec({"axes": {"benchmark": ["noop"],
                                 "policy": ["baseline"], "frequency": [1]}})

    def test_grid_needs_both_benchmark_and_policy(self):
        with pytest.raises(SweepSpecError, match="both benchmark and policy"):
            parse_spec({"axes": {"benchmark": ["noop"]}})

    def test_empty_spec_rejected(self):
        with pytest.raises(SweepSpecError, match="no cells"):
            parse_spec({})

    def test_invalid_config_override_rejected(self):
        with pytest.raises(SweepSpecError, match="invalid config overrides"):
            parse_spec({"axes": {"benchmark": ["noop"],
                                 "policy": ["baseline"],
                                 "config": [{"no_such_field": 1}]}})

    def test_duplicate_config_label_rejected(self):
        with pytest.raises(SweepSpecError, match="duplicate config label"):
            parse_spec({"axes": {"benchmark": ["noop"],
                                 "policy": ["baseline"],
                                 "config": [{"label": "a", "btb_entries": 1024},
                                            {"label": "a", "btb_entries": 2048}]}})

    def test_auto_config_label_is_deterministic(self):
        spec = parse_spec({"axes": {"benchmark": ["noop"],
                                    "policy": ["baseline"],
                                    "config": [{"btb_entries": 4096}]}})
        assert spec.configs[0].label == "btb_entries-4096"

    def test_bad_filter_key_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown filter key"):
            parse_spec({"axes": {"benchmark": ["noop"], "policy": ["baseline"]},
                        "exclude": [{"bench": "noop"}]})

    def test_config_dot_field_filter_key_allowed(self):
        spec = parse_spec({"axes": {"benchmark": ["noop"],
                                    "policy": ["baseline"]},
                           "exclude": [{"config.btb_entries": 2048}]})
        assert spec.exclude == ({"config.btb_entries": 2048},)

    def test_derived_cell_needs_benchmark_and_policy(self):
        with pytest.raises(SweepSpecError, match="explicit benchmark and policy"):
            parse_spec({"cells": [{"benchmark": "noop"}]})

    def test_derived_cells_fill_from_defaults(self):
        spec = parse_spec({"defaults": {"instructions": 5000, "warmup": 100},
                           "cells": [{"benchmark": "noop",
                                      "policy": "pdip_44"}]})
        (cell,) = spec.cells
        assert cell["instructions"] == 5000
        assert cell["warmup"] == 100
        assert cell["seed"] == 1
        assert cell["config"].label == "default"

    def test_non_integer_budget_rejected(self):
        with pytest.raises(SweepSpecError, match="expected an integer"):
            parse_spec({"axes": {"benchmark": ["noop"], "policy": ["baseline"],
                                 "instructions": ["lots"]}})


class TestLoad:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(GOLDEN_SPEC))
        spec = load_spec(path)
        assert spec.name == "golden"
        assert compile_spec(spec).digest == GOLDEN_PLAN_DIGEST

    def test_name_falls_back_to_file_stem(self, tmp_path):
        path = tmp_path / "mygrid.json"
        path.write_text(json.dumps({"axes": {"benchmark": ["noop"],
                                             "policy": ["baseline"]}}))
        assert load_spec(path).name == "mygrid"

    def test_missing_file(self, tmp_path):
        with pytest.raises(SweepSpecError, match="not found"):
            load_spec(tmp_path / "absent.toml")

    def test_bad_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(SweepSpecError, match="unsupported spec suffix"):
            load_spec(path)

    def test_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="broken.json"):
            load_spec(path)

    def test_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "grid.toml"
        path.write_text('[axes]\nbenchmark = ["noop"]\n'
                        'policy = ["baseline"]\n')
        spec = load_spec(path)
        assert spec.name == "grid"
        assert spec.benchmarks == ("noop",)


class TestCompile:
    def test_expansion_order_is_canonical(self):
        assert AXIS_NAMES == ("benchmark", "policy", "config", "seed",
                              "instructions", "warmup")
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        # benchmark outermost, then policy, then config; tatp/small excluded
        assert [c.describe() for c in plan.cells] == [
            "noop/baseline[small] seed=1",
            "noop/baseline seed=1",
            "noop/pdip_44[small] seed=1",
            "noop/pdip_44 seed=1",
            "tatp/baseline seed=1",
            "tatp/pdip_44 seed=1",
        ]

    def test_cell_keys_match_store_identity(self):
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        default_cells = [c for c in plan.cells if c.config is None]
        for cell in default_cells:
            assert cell.key == ResultStore.cell_key(
                cell.benchmark, cell.policy, cell.instructions,
                cell.warmup, seed=cell.seed)

    def test_config_override_changes_key(self):
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        by_label = {}
        for cell in plan.cells:
            by_label.setdefault(cell.config_label, cell)
        assert by_label["small"].key != by_label["default"].key

    def test_include_filter_keeps_only_matches(self):
        data = dict(GOLDEN_SPEC)
        data["include"] = [{"policy": "pdip_44"}]
        plan = compile_spec(parse_spec(data))
        assert {c.policy for c in plan.cells} == {"pdip_44"}

    def test_list_filter_value_is_any_of(self):
        data = dict(GOLDEN_SPEC)
        data["include"] = [{"benchmark": ["noop"],
                            "config": ["small", "default"]}]
        plan = compile_spec(parse_spec(data))
        assert {c.benchmark for c in plan.cells} == {"noop"}
        assert len(plan.cells) == 4

    def test_config_field_filter(self):
        data = dict(GOLDEN_SPEC)
        data["exclude"] = [{"config.btb_entries": 2048}]
        plan = compile_spec(parse_spec(data))
        assert {c.config_label for c in plan.cells} == {"default"}

    def test_duplicate_cells_dedupe_by_key(self):
        data = {"axes": {"benchmark": ["noop"], "policy": ["baseline"]},
                "cells": [{"benchmark": "noop", "policy": "baseline"}]}
        plan = compile_spec(parse_spec(data))
        assert len(plan.cells) == 1

    def test_derived_cells_append_after_grid(self):
        data = {"axes": {"benchmark": ["noop"], "policy": ["baseline"]},
                "cells": [{"benchmark": "tatp", "policy": "pdip_44",
                           "instructions": 9000, "warmup": 500}]}
        plan = compile_spec(parse_spec(data))
        assert [c.benchmark for c in plan.cells] == ["noop", "tatp"]
        assert plan.cells[-1].instructions == 9000

    def test_plan_summary_shape(self):
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        summary = plan.summary()
        assert summary["cells"] == 6
        assert summary["benchmarks"] == ["noop", "tatp"]
        assert summary["policies"] == ["baseline", "pdip_44"]
        assert summary["configs"] == ["small", "default"]
        assert summary["plan_digest"] == plan.digest

    def test_payload_round_trips_axes(self):
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        payload = plan.cells[0].payload()
        assert payload == {"benchmark": "noop", "policy": "baseline",
                           "seed": 1, "instructions": 20000, "warmup": 4000,
                           "config": {"btb_entries": 2048},
                           "config_label": "small"}
        assert "key" not in payload


# ----------------------------------------------------------------------
# digest goldens
# ----------------------------------------------------------------------
GOLDEN_PLAN_DIGEST = "98a948da644b900cf24386cd0deab79b8cbba45a"
EXAMPLE_DIGESTS = {
    "quick": "ea7a75ad4516ce3f34e029d0afa1c40485271fa6",
    "main_grid": "104d343371e1fe2b8ef9fcb53852811a7dc7226d",
    "btb_sweep": "aac42178983adbf337f68f72a3106d4fe33a21bb",
}
EXAMPLE_CELLS = {"quick": 4, "main_grid": 208, "btb_sweep": 50}


class TestDigestGoldens:
    def test_golden_spec_digest_is_stable(self):
        plan = compile_spec(parse_spec(GOLDEN_SPEC))
        assert len(plan.cells) == 6
        assert plan.digest == GOLDEN_PLAN_DIGEST

    def test_digest_ignores_run_key_inputs(self):
        # The plan digest hashes the sweep *shape*, not run keys: two
        # compilations of the same spec agree even though cell keys are
        # recomputed each time.
        a = compile_spec(parse_spec(GOLDEN_SPEC))
        b = compile_spec(parse_spec(json.loads(json.dumps(GOLDEN_SPEC))))
        assert a.digest == b.digest
        assert [c.key for c in a.cells] == [c.key for c in b.cells]

    def test_digest_changes_with_any_axis_edit(self):
        base = compile_spec(parse_spec(GOLDEN_SPEC)).digest
        edited = json.loads(json.dumps(GOLDEN_SPEC))
        edited["defaults"]["instructions"] = 20001
        assert compile_spec(parse_spec(edited)).digest != base
        renamed = json.loads(json.dumps(GOLDEN_SPEC))
        renamed["name"] = "golden2"
        assert compile_spec(parse_spec(renamed)).digest != base

    @pytest.mark.parametrize("name", sorted(EXAMPLE_DIGESTS))
    def test_example_specs_compile_to_pinned_plans(self, name):
        pytest.importorskip("tomllib")
        from pathlib import Path

        spec_path = (Path(__file__).resolve().parents[1]
                     / "examples" / "sweeps" / ("%s.toml" % name))
        plan = compile_spec(load_spec(spec_path))
        assert len(plan.cells) == EXAMPLE_CELLS[name]
        assert plan.digest == EXAMPLE_DIGESTS[name]

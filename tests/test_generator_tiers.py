"""Tests for the tiered call-graph directory inside the generator."""

import pytest

from repro.utils import derive_rng
from repro.workloads.generator import _CalleeDirectory
from repro.workloads.profiles import WorkloadProfile


def directory(**kw):
    profile = WorkloadProfile(name="tier-test", num_functions=200,
                              num_handlers=20, num_leaves=20, call_depth=5,
                              **kw)
    return _CalleeDirectory(profile, derive_rng(1, "layout:tier-test")), profile


class TestTierStructure:
    def test_tier_zero_is_handlers(self):
        d, p = directory()
        assert d.tiers[0] == list(range(1, 1 + p.num_handlers))

    def test_tiers_partition_mid_functions(self):
        d, p = directory()
        mids = [fid for tier in d.tiers[1:] for fid in tier]
        assert sorted(mids) == list(range(1 + p.num_handlers, d.first_leaf))

    def test_tier_sizes_grow(self):
        d, _ = directory()
        sizes = [len(t) for t in d.tiers[1:]]
        assert sizes[-1] >= sizes[0]

    def test_every_function_has_a_tier(self):
        d, p = directory()
        for fid in range(1, p.num_functions):
            assert fid in d.tier_of

    def test_leaves_below_last_tier(self):
        d, _ = directory()
        leaf_tier = d.tier_of[d.leaf_fids[0]]
        assert leaf_tier == len(d.tiers)


class TestCalleeSampling:
    def test_callee_strictly_deeper_or_leaf(self):
        d, p = directory()
        for tier_idx, tier in enumerate(d.tiers[:-1]):
            for caller in tier[:3]:
                for _ in range(20):
                    callee = d.sample_callee(caller)
                    assert callee is not None
                    callee_tier = d.tier_of[callee]
                    assert (callee_tier == tier_idx + 1
                            or callee in d.leaf_fids)

    def test_last_tier_calls_only_leaves(self):
        d, _ = directory()
        caller = d.tiers[-1][0]
        for _ in range(20):
            callee = d.sample_callee(caller)
            assert callee in d.leaf_fids

    def test_leaf_call_frac_one_always_leaves(self):
        d, _ = directory(leaf_call_frac=1.0)
        caller = d.tiers[0][0]
        for _ in range(20):
            assert d.sample_callee(caller) in d.leaf_fids


class TestCallSiteCounts:
    def test_leaves_get_zero(self):
        d, _ = directory()
        assert d.num_call_sites(d.leaf_fids[0], 10) == 0

    def test_capped_at_three(self):
        d, _ = directory(call_sites_mean=3.0)
        for _ in range(20):
            assert d.num_call_sites(1, 12) <= 3

    def test_capped_by_block_count(self):
        d, _ = directory(call_sites_mean=3.0)
        assert d.num_call_sites(1, 2) <= 1

    def test_mean_respected_statistically(self):
        d, _ = directory(call_sites_mean=1.5)
        samples = [d.num_call_sites(1, 12) for _ in range(2000)]
        assert 1.3 < sum(samples) / len(samples) < 1.7

"""Trace export tests: golden Chrome JSON, JSONL round-trip, structure.

The golden file pins the full Perfetto-loadable export of a tiny
deterministic workload (noop / pdip_44 / seed 1 / 150 instructions).
Any change to the event schema, the stage->track mapping, or the
simulator's emit sites trips the comparison. If a *deliberate* change
invalidates it, regenerate with::

    PYTHONPATH=src python -c "
    from repro.simulator.runner import run_benchmark
    from repro.telemetry import TelemetrySession
    from repro.telemetry.export import write_chrome
    s = TelemetrySession()
    run_benchmark('noop', 'pdip_44', instructions=150, warmup=50, seed=1,
                  use_cache=False, telemetry=s)
    write_chrome(s.recorder.events(),
                 'tests/data/golden_trace_noop.trace.json',
                 meta={'benchmark': 'noop', 'policy': 'pdip_44', 'seed': 1,
                       'instructions': 150, 'warmup': 50})"
"""

import json
from pathlib import Path

from repro.simulator.runner import run_benchmark
from repro.telemetry import TelemetrySession, export_recorder, to_chrome
from repro.telemetry.events import STAGES
from repro.telemetry.export import read_jsonl, write_chrome, write_jsonl
from repro.telemetry.recorder import TraceRecorder

GOLDEN_TRACE = Path(__file__).parent / "data" / "golden_trace_noop.trace.json"

GOLDEN_META = {"benchmark": "noop", "policy": "pdip_44", "seed": 1,
               "instructions": 150, "warmup": 50}


def _tiny_session():
    session = TelemetrySession()
    run_benchmark(GOLDEN_META["benchmark"], GOLDEN_META["policy"],
                  instructions=GOLDEN_META["instructions"],
                  warmup=GOLDEN_META["warmup"], seed=GOLDEN_META["seed"],
                  use_cache=False, telemetry=session)
    return session


class TestGoldenChromeTrace:
    def test_tiny_workload_matches_golden(self, tmp_path):
        session = _tiny_session()
        got_path = write_chrome(session.recorder.events(),
                                tmp_path / "got.trace.json",
                                meta=GOLDEN_META)
        got = json.loads(got_path.read_text())
        want = json.loads(GOLDEN_TRACE.read_text())
        assert got == want

    def test_golden_is_perfetto_loadable_shape(self):
        # the minimal contract Perfetto/chrome://tracing require: a
        # traceEvents array whose rows carry name/ph/pid (+ts for
        # instants), with metadata rows naming process and threads
        doc = json.loads(GOLDEN_TRACE.read_text())
        rows = doc["traceEvents"]
        assert isinstance(rows, list) and rows
        phases = {row["ph"] for row in rows}
        assert phases == {"M", "i"}
        for row in rows:
            assert isinstance(row["name"], str)
            assert row["pid"] == 1
            if row["ph"] == "i":
                assert isinstance(row["ts"], int)
                assert row["s"] == "t"
                assert "seq" in row["args"]
        thread_names = {row["args"]["name"] for row in rows
                        if row["name"] == "thread_name"}
        assert thread_names == set(STAGES)


class TestChromeStructure:
    def test_stage_tracks_and_event_rows(self):
        rec = TraceRecorder(capacity=8)
        rec.emit("resteer", 10, resteer_kind="COND", trigger_line=3)
        rec.emit("pq_issue", 12, line=7)
        doc = to_chrome(rec.events(), meta={"seed": 9})
        assert doc["metadata"] == {"seed": 9}
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert [r["name"] for r in instants] == ["resteer", "pq_issue"]
        by_name = {r["name"]: r for r in instants}
        # resteer lands on the frontend track, pq_issue on prefetch
        tid_names = {r["tid"]: r["args"]["name"]
                     for r in doc["traceEvents"] if r["name"] == "thread_name"}
        assert tid_names[by_name["resteer"]["tid"]] == "frontend"
        assert tid_names[by_name["pq_issue"]["tid"]] == "prefetch"
        assert by_name["resteer"]["ts"] == 10
        assert by_name["resteer"]["args"]["trigger_line"] == 3

    def test_chrome_json_is_sorted_and_stable(self, tmp_path):
        rec = TraceRecorder(capacity=8)
        rec.emit("pq_issue", 1, line=1)
        a = write_chrome(rec.events(), tmp_path / "a.json").read_text()
        b = write_chrome(rec.events(), tmp_path / "b.json").read_text()
        assert a == b


class TestJsonl:
    def test_round_trip(self, tmp_path):
        rec = TraceRecorder(capacity=8)
        rec.emit("pq_drop", 4, line=2, reason="full")
        rec.emit("fast_forward", 9, cycles=120)
        path = write_jsonl(rec.events(), tmp_path / "t.jsonl",
                           meta={"seed": 1})
        assert read_jsonl(path) == rec.events()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["_meta"] is True
        assert header["seed"] == 1

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"_meta": true}\n\n'
                        '{"seq": 0, "cycle": 3, "kind": "pq_issue", '
                        '"args": {"line": 5}}\n')
        assert read_jsonl(path) == [(0, 3, "pq_issue", {"line": 5})]


class TestExportRecorder:
    def test_writes_both_formats(self, tmp_path):
        session = _tiny_session()
        paths = export_recorder(session.recorder, tmp_path / "run",
                                meta=GOLDEN_META)
        chrome = json.loads(Path(paths["chrome"]).read_text())
        events = read_jsonl(paths["jsonl"])
        instants = [r for r in chrome["traceEvents"] if r["ph"] == "i"]
        assert len(instants) == len(events) == len(session.recorder)
        # both formats carry the same (seq, cycle, kind) stream
        assert ([(r["args"]["seq"], r["ts"], r["name"]) for r in instants]
                == [(seq, cyc, kind) for seq, cyc, kind, _ in events])

"""Chaos tests for the simulation cluster (real subprocess fleets).

Every test here spins up a real coordinator + real worker processes
via :mod:`tests.cluster_harness` and then breaks something on purpose:

* SIGKILL a worker mid-cell — the coordinator retries the cell on a
  survivor and the final stats are *bit-identical* to a single-node
  run, with exactly one blob per run digest across every shard;
* SIGSTOP a worker (partition) — heartbeats lapse, the coordinator
  reaps it and reroutes, and on SIGCONT the zombie re-registers;
* injected ``fault: crash`` / ``fault: hang`` cells — the retry
  *budget* ladder (worker-reported failures), distinct from the
  worker-*loss* ladder which never spends the budget;
* SIGTERM the whole fleet — backlog finishes, everything exits 0.

The correctness bar throughout: cluster execution must be
observationally identical to ``run_benchmark`` on one machine —
same stats dict, same canonical digest, one execution per digest.
"""

from __future__ import annotations

import time

import pytest

from repro.service.cluster import HashRing
from repro.service.jobs import JobState
from repro.service.store import ResultStore
from repro.simulator.runner import run_benchmark

from tests.cluster_harness import BIG_CELL, SMALL_CELL, Cluster


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep golden runs in this test's tmp dir, manifests off."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local-cache"))
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")


def golden(cell, seed=1):
    """The single-node truth: an uncached in-process run of ``cell``."""
    return run_benchmark(use_cache=False, seed=seed, **cell).to_dict()


def cell_key(cell, seed=1):
    return ResultStore.cell_key(cell["benchmark"], cell["policy"],
                                cell["instructions"], cell["warmup"],
                                seed=seed)


class TestDegenerateSingleWorker:
    def test_one_worker_is_bit_identical_to_local(self, tmp_path):
        with Cluster(tmp_path, workers=1) as c:
            client = c.client()
            job = client.submit(**SMALL_CELL)
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == JobState.DONE
            assert done["worker"] == "w0"
            assert done["key"] == cell_key(SMALL_CELL)
            stats = client.result(job["id"])["stats"]
            assert stats == golden(SMALL_CELL)
            # the blob landed on the (only) shard under the same digest
            stored = c.shard_stats("w0", done["key"])
            assert stored == stats
            assert c.cluster_blob_counts() == {done["key"]: 1}

    def test_resubmit_is_cluster_store_hit(self, tmp_path):
        with Cluster(tmp_path, workers=2) as c:
            client = c.client()
            first = client.wait(client.submit(**SMALL_CELL)["id"],
                                timeout=60)
            second = client.wait(client.submit(**SMALL_CELL)["id"],
                                 timeout=60)
            assert first["state"] == second["state"] == JobState.DONE
            assert second["source"] == "store"
            counters = c.health()["counters"]
            assert counters["executed"] == 1
            assert counters["store_hits"] == 1
            assert counters["shard_hits"] == 1
            assert c.cluster_blob_counts() == {first["key"]: 1}

    def test_inflight_duplicate_coalesces_cluster_wide(self, tmp_path):
        with Cluster(tmp_path, workers=2) as c:
            client = c.client()
            first = client.submit(**BIG_CELL)
            dup = client.submit(**BIG_CELL)   # while the first runs
            assert dup["id"] == first["id"]
            done = client.wait(first["id"], timeout=120)
            assert done["state"] == JobState.DONE
            assert c.health()["counters"]["executed"] == 1


class TestKillWorkerMidJob:
    def test_sigkill_mid_cell_retries_on_survivor_bit_identical(
            self, tmp_path):
        cells = [(BIG_CELL, 1)] + [(SMALL_CELL, s) for s in range(2, 7)]
        with Cluster(tmp_path, workers=3) as c:
            client = c.client()
            # the big cell goes first, at top priority, so it is
            # running when the axe falls
            big = client.submit(priority=10, **BIG_CELL)
            ids = {(id(BIG_CELL), 1): big["id"]}
            for cell, seed in cells[1:]:
                ids[(id(cell), seed)] = client.submit(seed=seed,
                                                      **cell)["id"]
            running = c.wait_state(big["id"], JobState.RUNNING)
            victim = running["worker"]
            assert victim in c.workers
            c.kill(victim)

            done = c.wait_all_done(list(ids.values()), timeout=120)
            by_id = {j["id"]: j for j in done}
            assert all(j["state"] == JobState.DONE for j in done)
            # the killed attempt did not spend the retry budget and the
            # cell finished on a survivor
            big_done = by_id[big["id"]]
            assert big_done["worker"] != victim
            assert big_done["attempts"] == 1

            # bit-identical to single-node truth, every cell
            for cell, seed in cells:
                job = by_id[ids[(id(cell), seed)]]
                assert (client.result(job["id"])["stats"]
                        == golden(cell, seed=seed))

            # exactly one blob per unique run digest, cluster-wide —
            # counting the dead worker's surviving shard files too
            expected = {cell_key(cell, seed=seed)
                        for cell, seed in cells}
            counts = c.cluster_blob_counts()
            assert set(counts) == expected
            assert set(counts.values()) == {1}

            counters = c.health()["counters"]
            assert counters["executed"] == len(cells)
            assert counters["workers_lost"] >= 1
            assert counters["requeues"] >= 1
            assert len(c.alive_worker_ids()) == 2


class TestPartition:
    def test_sigstop_lapses_heartbeat_reroutes_and_zombie_rejoins(
            self, tmp_path):
        with Cluster(tmp_path, workers=2) as c:
            client = c.client()
            job = client.submit(**BIG_CELL)
            running = c.wait_state(job["id"], JobState.RUNNING)
            victim = running["worker"]
            survivor = next(n for n in c.workers if n != victim)
            c.pause(victim)   # partition: alive but silent

            done = client.wait(job["id"], timeout=120)
            assert done["state"] == JobState.DONE
            assert done["worker"] == survivor
            assert done["attempts"] == 1   # loss, not budget
            assert client.result(job["id"])["stats"] == golden(BIG_CELL)

            counters = c.health()["counters"]
            assert counters["heartbeat_expiries"] >= 1
            assert counters["workers_lost"] >= 1
            assert c.alive_worker_ids() == [survivor]

            # the partition heals: the zombie's next heartbeat gets
            # 410 and it re-registers from scratch
            c.resume(victim)
            c.wait_alive(2)
            assert set(c.alive_worker_ids()) == set(c.workers)


class TestScheduling:
    def test_idle_worker_steals_from_busy_shard_owner(self, tmp_path):
        cell = dict(SMALL_CELL, instructions=20000)
        ring = HashRing()
        ring.add("w0")
        ring.add("w1")
        seeds, s = [], 1
        while len(seeds) < 4:
            if ring.owner(cell_key(cell, seed=s)) == "w0":
                seeds.append(s)
            s += 1
        with Cluster(tmp_path, workers=2) as c:
            client = c.client()
            ids = [client.submit(seed=s, **cell)["id"] for s in seeds]
            done = c.wait_all_done(ids, timeout=120)
            assert all(j["state"] == JobState.DONE for j in done)
            # all four cells are owned by w0 (1 slot): w1 must have
            # stolen at least one rather than idling
            assert c.health()["counters"]["steals"] >= 1
            by_name = {w["id"]: w for w in c.client().workers()}
            assert by_name["w1"]["executed"] >= 1
            for s, job in zip(seeds, done):
                assert (client.result(job["id"])["stats"]
                        == golden(cell, seed=s))

    def test_backlog_waits_for_first_worker_then_drains(self, tmp_path):
        with Cluster(tmp_path, workers=0) as c:
            client = c.client()
            ids = [client.submit(seed=s, **SMALL_CELL)["id"]
                   for s in (1, 2)]
            time.sleep(0.5)
            assert all(client.status(i)["state"] == JobState.QUEUED
                       for i in ids)
            c.add_worker()
            c.wait_alive(1)
            done = c.wait_all_done(ids, timeout=120)
            assert all(j["state"] == JobState.DONE for j in done)
            assert all(j["worker"] == "w0" for j in done)


class TestInjectedFaults:
    def test_crash_fault_spends_budget_then_fails_fleet_survives(
            self, tmp_path):
        with Cluster(tmp_path, workers=2, retries=1,
                     allow_faults=True) as c:
            client = c.client()
            job = client.submit(fault="crash", **SMALL_CELL)
            done = client.wait(job["id"], timeout=120)
            assert done["state"] == JobState.FAILED
            assert done["attempts"] == 2    # initial + 1 retried attempt
            counters = c.health()["counters"]
            assert counters["worker_crashes"] >= 2
            assert counters["workers_lost"] == 0   # pool died, not worker
            assert len(c.alive_worker_ids()) == 2
            # the fleet still executes honest work afterwards
            ok = client.wait(client.submit(**SMALL_CELL)["id"],
                             timeout=60)
            assert ok["state"] == JobState.DONE

    def test_hang_fault_times_out_and_fails(self, tmp_path):
        with Cluster(tmp_path, workers=2, retries=0, timeout=0.5,
                     allow_faults=True) as c:
            client = c.client()
            job = client.submit(fault="hang", fault_seconds=30,
                                **SMALL_CELL)
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == JobState.FAILED
            assert c.health()["counters"]["timeouts"] >= 1
            assert len(c.alive_worker_ids()) == 2


class TestFleetDrain:
    def test_sigterm_fleet_finishes_backlog_and_exits_zero(
            self, tmp_path):
        c = Cluster(tmp_path, workers=2)
        try:
            c.start()
            client = c.client()
            ids = [client.submit(seed=s, **SMALL_CELL)["id"]
                   for s in (1, 2, 3)]
            codes = c.drain_fleet()   # SIGTERM with the backlog queued
            assert codes == {"coordinator": 0, "w0": 0, "w1": 0}
            tail = c.coordinator.stdout.read()
            assert "drained cleanly" in tail
            # the backlog was finished and persisted before exit
            expected = {cell_key(SMALL_CELL, seed=s) for s in (1, 2, 3)}
            counts = c.cluster_blob_counts()
            assert set(counts) == expected
            assert set(counts.values()) == {1}
            assert len(ids) == 3
        finally:
            c.stop()

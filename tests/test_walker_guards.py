"""Edge-case guards in the walker and generator."""

import pytest

from repro.workloads.generator import generate_layout
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout, Function
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.walker import PathWalker


class TestStackGuards:
    def test_stack_overflow_detected(self):
        """A (hand-built) self-recursive layout must trip the guard
        instead of looping forever."""
        blocks = [
            BasicBlock(bid=0, addr=0x1000, num_instructions=2, fid=0,
                       kind=BranchKind.CALL, taken_target=0, fallthrough=1),
            BasicBlock(bid=1, addr=0x1008, num_instructions=2, fid=0,
                       kind=BranchKind.RETURN),
        ]
        layout = CodeLayout(blocks=blocks,
                            functions=[Function(fid=0, name="rec", entry=0,
                                                blocks=[0, 1])])
        walker = PathWalker(layout, seed=1)
        with pytest.raises(RuntimeError):
            for _ in range(10_000):
                walker.next_event()

    def test_return_underflow_restarts_dispatcher(self):
        blocks = [
            BasicBlock(bid=0, addr=0x1000, num_instructions=2, fid=0,
                       kind=BranchKind.RETURN),
        ]
        layout = CodeLayout(blocks=blocks,
                            functions=[Function(fid=0, name="d", entry=0,
                                                blocks=[0])])
        walker = PathWalker(layout, seed=1)
        ev = walker.next_event()
        assert ev.next_bid == 0  # restarted at the dispatcher entry

    def test_call_without_return_point_raises(self):
        blocks = [
            BasicBlock(bid=0, addr=0x1000, num_instructions=2, fid=0,
                       kind=BranchKind.CALL, taken_target=1,
                       fallthrough=None),
            BasicBlock(bid=1, addr=0x2000, num_instructions=2, fid=1,
                       kind=BranchKind.RETURN),
        ]
        layout = CodeLayout(
            blocks=blocks,
            functions=[Function(fid=0, name="a", entry=0, blocks=[0]),
                       Function(fid=1, name="b", entry=1, blocks=[1])])
        walker = PathWalker(layout, seed=1)
        with pytest.raises(ValueError):
            walker.next_event()


class TestTinyProfiles:
    """Degenerate profile sizes must still generate valid layouts."""

    @pytest.mark.parametrize("num_functions", [8, 12, 20])
    def test_tiny_layout_generates_and_walks(self, num_functions):
        profile = WorkloadProfile(name="tiny-%d" % num_functions,
                                  num_functions=num_functions,
                                  num_handlers=2, num_leaves=2,
                                  call_depth=2)
        layout = generate_layout(profile, seed=1)
        layout.validate()
        walker = PathWalker(layout, seed=1)
        for _ in range(500):
            walker.next_event()

    def test_single_tier_depth(self):
        profile = WorkloadProfile(name="flat", num_functions=20,
                                  num_handlers=4, num_leaves=4, call_depth=1)
        layout = generate_layout(profile, seed=1)
        layout.validate()
        walker = PathWalker(layout, seed=1)
        for _ in range(500):
            walker.next_event()

"""Tests for repro.utils: address arithmetic, RNG, canonical hashing."""

import dataclasses
import math

import pytest

from repro.utils import (
    INSTRUCTION_SIZE,
    LINE_SIZE,
    canonical_digest,
    derive_rng,
    freeze,
    geomean,
    line_base,
    line_of,
    lines_spanned,
)


class TestLineArithmetic:
    def test_line_of_zero(self):
        assert line_of(0) == 0

    def test_line_of_within_first_line(self):
        assert line_of(LINE_SIZE - 1) == 0

    def test_line_of_boundary(self):
        assert line_of(LINE_SIZE) == 1

    def test_line_of_large_address(self):
        assert line_of(10 * LINE_SIZE + 5) == 10

    def test_line_base_rounds_down(self):
        assert line_base(LINE_SIZE + 7) == LINE_SIZE

    def test_line_base_idempotent(self):
        addr = 12345
        assert line_base(line_base(addr)) == line_base(addr)

    def test_lines_spanned_single(self):
        assert lines_spanned(0, 4) == [0]

    def test_lines_spanned_exact_line(self):
        assert lines_spanned(0, LINE_SIZE) == [0]

    def test_lines_spanned_crossing(self):
        assert lines_spanned(LINE_SIZE - 4, 8) == [0, 1]

    def test_lines_spanned_multiple(self):
        assert lines_spanned(0, 3 * LINE_SIZE) == [0, 1, 2]

    def test_lines_spanned_zero_bytes(self):
        assert lines_spanned(100, 0) == []

    def test_lines_spanned_offset(self):
        lines = lines_spanned(5 * LINE_SIZE + 60, 8)
        assert lines == [5, 6]


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(42, "walker")
        b = derive_rng(42, "walker")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_decorrelated(self):
        a = derive_rng(42, "walker")
        b = derive_rng(42, "emissary")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seeds_decorrelated(self):
        a = derive_rng(1, "walker")
        b = derive_rng(2, "walker")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestGeomean:
    def test_single_value(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_matches_log_mean(self):
        vals = [1.1, 0.9, 1.3, 2.0]
        expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
        assert geomean(vals) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


@dataclasses.dataclass
class _Point:
    y: int = 2
    x: int = 1


class TestCanonicalDigest:
    """One canonical identity: cache file = manifest key = store key."""

    def test_pinned_digest(self):
        # golden value; a change here silently invalidates every result
        # cache, manifest cross-reference, and store row in existence
        assert canonical_digest({"b": [1, 2], "a": "x"}) == \
            "2aca66d40849c00b15a828c75a2d92ac958cda44"

    def test_key_order_irrelevant(self):
        assert canonical_digest({"a": 1, "b": 2}) == \
            canonical_digest({"b": 2, "a": 1})

    def test_tuples_and_lists_equal(self):
        assert canonical_digest({"v": (1, 2)}) == \
            canonical_digest({"v": [1, 2]})

    def test_dataclass_equals_its_dict(self):
        assert canonical_digest(_Point()) == \
            canonical_digest({"x": 1, "y": 2})

    def test_value_changes_digest(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})

    def test_freeze_nested(self):
        frozen = freeze({"p": _Point(), "seq": (1, (2, 3))})
        assert frozen == {"p": {"y": 2, "x": 1}, "seq": [1, [2, 3]]}

    def test_freeze_sorts_dict_keys(self):
        assert list(freeze({"b": 1, "a": 2})) == ["a", "b"]

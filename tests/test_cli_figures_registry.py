"""Every registered figure module must expose the driver surface."""

import importlib

import pytest

from repro.cli import FIGURES


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_driver_surface(figure_id):
    module = importlib.import_module(FIGURES[figure_id])
    assert callable(getattr(module, "run"))
    assert callable(getattr(module, "render"))
    assert callable(getattr(module, "main"))


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_driver_documented(figure_id):
    module = importlib.import_module(FIGURES[figure_id])
    assert module.__doc__ and len(module.__doc__) > 40


def test_all_paper_artifacts_registered():
    for fig in ("fig01", "fig03", "fig04", "fig09", "fig10", "fig11",
                "fig12", "fig13", "fig14", "fig15", "fig16",
                "tab01", "tab04", "tab05"):
        assert fig in FIGURES


def test_benches_exist_for_every_figure(tmp_path):
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
    stems = {p.stem for p in bench_dir.glob("bench_*.py")}
    for figure_id, module in FIGURES.items():
        name = module.rsplit(".", 1)[1]
        assert any(name in stem or figure_id in stem for stem in stems), \
            f"no bench for {figure_id}"

"""Tests for the per-cycle probe infrastructure."""

import pytest

from repro.simulator.machine import Machine
from repro.simulator.probe import TimelineProbe, sparkline
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

SMALL = WorkloadProfile(name="probe-test", num_functions=50, num_handlers=6,
                        num_leaves=8, call_depth=3)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped_at_width(self):
        assert len(sparkline([1.0] * 500, width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_values_monotone_glyphs(self):
        text = sparkline([0.0, 0.5, 1.0], vmax=1.0)
        assert text[0] <= text[1] <= text[2] or text[0] == " "

    def test_zero_values(self):
        assert sparkline([0.0, 0.0]) == "  "


class TestTimelineProbe:
    def test_probe_collects_samples(self):
        layout = generate_layout(SMALL, seed=2)
        machine = Machine(layout, SMALL, seed=2)
        machine.probe = probe = TimelineProbe(sample_every=10)
        machine.run(3000, warmup=0)
        assert len(probe.ftq_occupancy) > 10
        assert len(probe.ftq_occupancy) == len(probe.rob_occupancy)
        assert len(probe.ftq_occupancy) == len(probe.mshr_inflight)

    def test_resteer_marks_accumulate(self):
        layout = generate_layout(SMALL, seed=2)
        machine = Machine(layout, SMALL, seed=2)
        machine.probe = probe = TimelineProbe(sample_every=10)
        machine.run(5000, warmup=0)
        assert sum(probe.resteer_marks) == machine.stats.resteers

    def test_render(self):
        layout = generate_layout(SMALL, seed=2)
        machine = Machine(layout, SMALL, seed=2)
        machine.probe = probe = TimelineProbe(sample_every=10)
        machine.run(2000, warmup=0)
        text = probe.render()
        assert "FTQ occupancy" in text
        assert "resteers" in text

    def test_no_probe_no_effect(self):
        layout = generate_layout(SMALL, seed=2)
        a = Machine(layout, SMALL, seed=2)
        stats_a = a.run(2000, warmup=0)
        b = Machine(layout, SMALL, seed=2)
        b.probe = TimelineProbe()
        stats_b = b.run(2000, warmup=0)
        assert stats_a.cycles == stats_b.cycles

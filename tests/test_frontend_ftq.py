"""Tests for the fetch target queue."""

import pytest

from repro.frontend.ftq import FTQ, FTQEntry
from repro.workloads.layout import BasicBlock, BranchKind


def entry(bid=0, cycle=0, lines=None):
    block = BasicBlock(bid=bid, addr=0x1000 + bid * 64, num_instructions=4)
    return FTQEntry(block=block, lines=lines or block.lines(),
                    enqueue_cycle=cycle)


class TestFTQ:
    def test_starts_empty(self):
        ftq = FTQ(depth=4)
        assert ftq.empty
        assert not ftq.full
        assert len(ftq) == 0
        assert ftq.head() is None

    def test_fifo_order(self):
        ftq = FTQ(depth=4)
        for i in range(3):
            ftq.push(entry(bid=i))
        assert ftq.pop().block.bid == 0
        assert ftq.pop().block.bid == 1
        assert ftq.pop().block.bid == 2

    def test_full_rejects_push(self):
        ftq = FTQ(depth=2)
        ftq.push(entry(0))
        ftq.push(entry(1))
        assert ftq.full
        with pytest.raises(RuntimeError):
            ftq.push(entry(2))

    def test_flush_empties(self):
        ftq = FTQ(depth=4)
        for i in range(3):
            ftq.push(entry(i))
        assert ftq.flush() == 3
        assert ftq.empty
        assert ftq.flushes == 1
        assert ftq.flushed_entries == 3

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FTQ(depth=0)

    def test_iteration(self):
        ftq = FTQ(depth=4)
        for i in range(3):
            ftq.push(entry(i))
        assert [e.block.bid for e in ftq] == [0, 1, 2]


class TestFTQEntry:
    def test_ready_cycle_without_fills(self):
        e = entry(cycle=7)
        assert e.ready_cycle == 7

    def test_ready_cycle_is_max_of_lines(self):
        e = entry(cycle=0)
        e.line_ready = {10: 5, 11: 42, 12: 17}
        assert e.ready_cycle == 42

    def test_incurred_miss(self):
        e = entry()
        assert not e.incurred_miss
        e.missed_lines.append(10)
        assert e.incurred_miss

    def test_pending_counts_as_miss(self):
        e = entry()
        e.pending_lines.append(10)
        assert e.incurred_miss

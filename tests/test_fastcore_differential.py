"""Differential fuzzing of the flat-array fast core against the reference.

The fast core's whole contract is *bit-identical* ``SimulationStats``:
same counters, same RNG draw sequence, same telemetry event stream. The
golden-stats anchors pin three known cells; this module drives the two
cores over hypothesis-sampled (benchmark, policy, seed, budget) points
so divergence anywhere in the configuration space — a missed counter in
an inlined path, an RNG draw out of order, a stale mirror entry — shows
up as a concrete failing cell rather than a drifting benchmark.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.config import MachineConfig
from repro.simulator.runner import run_benchmark
from repro.telemetry import TelemetrySession

#: one representative per prefetcher family plus the replacement-policy
#: and ideal variants; the two PDIP rows cover both trigger modes
_POLICIES = [
    "baseline",
    "next_line",
    "rdip",
    "eip_46",
    "eip_analytical",
    "pdip_44",
    "pdip_44_path",
    "emissary",
    "fec_ideal",
]

#: small but structurally distinct workloads (different branch mixes,
#: footprint sizes, and indirect-target behavior)
_BENCHMARKS = ["tatp", "kafka", "dotty", "voter", "xalan"]


def _run(backend: str, benchmark: str, policy: str, seed: int,
         instructions: int, warmup: int, telemetry=None):
    return run_benchmark(
        benchmark, policy, instructions=instructions, warmup=warmup,
        seed=seed, config=MachineConfig(backend=backend),
        use_cache=False, telemetry=telemetry)


@settings(max_examples=12, deadline=None)
@given(
    benchmark=st.sampled_from(_BENCHMARKS),
    policy=st.sampled_from(_POLICIES),
    seed=st.integers(min_value=0, max_value=64),
    instructions=st.integers(min_value=1500, max_value=4000),
    warmup=st.integers(min_value=0, max_value=1200),
)
def test_fastcore_matches_reference(benchmark, policy, seed, instructions,
                                    warmup):
    """Full stats dict equality, ref vs fast, on fuzzed cells."""
    ref = _run("ref", benchmark, policy, seed, instructions, warmup)
    fast = _run("fast", benchmark, policy, seed, instructions, warmup)
    got, want = fast.to_dict(), ref.to_dict()
    assert got == want, {
        k: (want.get(k), got.get(k))
        for k in set(want) | set(got) if want.get(k) != got.get(k)
    }


def test_fastcore_telemetry_bit_identity():
    """The fast core must emit the exact reference event stream.

    Every inlined hot path in the fast core preserves its ``tel.emit``
    call (behind the same ``tel.enabled`` gate), so with a recorder
    attached the two cores produce identical (seq, cycle, kind, args)
    streams and identical summaries.
    """
    streams = {}
    for backend in ("ref", "fast"):
        session = TelemetrySession(capacity=1 << 16, sample_every=1)
        _run(backend, "kafka", "eip_46", 3, 4000, 800, telemetry=session)
        streams[backend] = (session.recorder.events(),
                            session.recorder.summary())
    ref_events, ref_summary = streams["ref"]
    fast_events, fast_summary = streams["fast"]
    assert fast_summary == ref_summary
    assert fast_events == ref_events


def test_fastcore_telemetry_bit_identity_pdip():
    """Same stream check through the PDIP mirror fast paths."""
    streams = {}
    for backend in ("ref", "fast"):
        session = TelemetrySession(capacity=1 << 16, sample_every=1)
        _run(backend, "tatp", "pdip_44", 1, 4000, 800, telemetry=session)
        streams[backend] = session.recorder.events()
    assert streams["fast"] == streams["ref"]


def test_batch_stall_draws_matches_serial_draws():
    """``batch_stall_draws`` consumes the exact scalar RNG stream.

    With numpy importable this exercises the MT19937 state transplant;
    without it the fallback is the serial loop itself, so the check is
    trivially green — either way the contract (same hit count, same
    post-state) holds on every host.
    """
    import random

    from repro.simulator.fastcore import batch_stall_draws

    for draws in (1, 31, 32, 33, 257, 1024):
        a = random.Random(99)
        b = random.Random(99)
        want = sum(1 for _ in range(draws) if a.random() < 0.37)
        got = batch_stall_draws(b, draws, 0.37)
        assert got == want
        assert a.getstate() == b.getstate()
        # the streams stay aligned after the batch too
        assert a.random() == b.random()

"""Tests for the set-associative cache with pending fills and MSHRs."""

import pytest

from repro.memory.cache import Cache


@pytest.fixture
def cache():
    # 4 KB, 4-way, 64B lines -> 64 lines, 16 sets
    return Cache("test", size_kb=4, assoc=4, mshrs=4)


class TestBasics:
    def test_probe_empty(self, cache):
        assert not cache.probe(5)

    def test_fill_then_probe(self, cache):
        cache.fill(5, ready_cycle=10)
        assert cache.probe(5)

    def test_lookup_miss_counts(self, cache):
        assert cache.lookup(5, cycle=0) is None
        assert cache.misses == 1
        assert cache.accesses == 1

    def test_lookup_hit_returns_state(self, cache):
        cache.fill(5, ready_cycle=10)
        state = cache.lookup(5, cycle=20)
        assert state is not None
        assert state.ready_cycle == 10

    def test_pending_line_visible(self, cache):
        cache.fill(5, ready_cycle=100)
        state = cache.lookup(5, cycle=50)
        assert state is not None
        assert state.ready_cycle > 50  # still in flight

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", size_kb=1, assoc=7)

    def test_invalidate(self, cache):
        cache.fill(5, ready_cycle=0)
        cache.invalidate(5)
        assert not cache.probe(5)


class TestReplacement:
    def test_set_fills_to_assoc(self, cache):
        # lines 0, 16, 32, 48 map to set 0 (16 sets)
        for i in range(4):
            cache.fill(i * 16, ready_cycle=0)
        assert cache.resident_lines() == 4
        assert cache.evictions == 0

    def test_fifth_line_evicts_lru(self, cache):
        for i in range(4):
            cache.fill(i * 16, ready_cycle=0)
        cache.lookup(0, cycle=1)  # line 0 most recent
        result = cache.fill(4 * 16, ready_cycle=0)
        assert result.evicted_line == 16  # LRU among {16,32,48}
        assert cache.probe(0)
        assert not cache.probe(16)

    def test_refill_same_line_no_eviction(self, cache):
        cache.fill(5, ready_cycle=0)
        result = cache.fill(5, ready_cycle=10)
        assert result.evicted_line is None

    def test_eviction_reports_state(self, cache):
        cache.fill(16, ready_cycle=0, source="prefetch")
        for i in (0, 2, 3, 4):
            cache.fill(i * 16, ready_cycle=0)
        # set 0 now overflowed; the prefetch line may have been the victim
        assert cache.evictions == 1


class TestMSHR:
    def test_inflight_counts_pending(self, cache):
        cache.fill(1, ready_cycle=100)
        cache.fill(2, ready_cycle=100)
        assert cache.mshr_inflight(cycle=0) == 2

    def test_completed_fills_release_mshrs(self, cache):
        cache.fill(1, ready_cycle=10)
        cache.fill(2, ready_cycle=100)
        assert cache.mshr_inflight(cycle=50) == 1
        assert cache.mshr_free(cycle=50) == 3

    def test_eviction_of_pending_line_frees_mshr(self, cache):
        # fill set 0 with pending lines, then overflow it
        for i in range(4):
            cache.fill(i * 16, ready_cycle=1000)
        assert cache.mshr_inflight(cycle=0) == 4
        cache.fill(4 * 16, ready_cycle=1000)
        assert cache.mshr_inflight(cycle=0) == 4  # victim's MSHR released


class TestPrefetchMetadata:
    def test_prefetch_fill_marked_unused(self, cache):
        cache.fill(5, ready_cycle=0, source="prefetch")
        assert cache.get_state(5).unused_prefetch

    def test_fetch_fill_not_marked(self, cache):
        cache.fill(5, ready_cycle=0, source="fetch")
        assert not cache.get_state(5).unused_prefetch

"""Tests for the suite runner and the on-disk result cache."""

import os

import pytest

from repro.simulator import cache as result_cache
from repro.simulator import runner as runner_mod
from repro.simulator.config import MachineConfig
from repro.simulator.policies import get_policy
from repro.simulator.runner import run_benchmark, run_suite, speedup
from repro.simulator.stats import SimulationStats
from repro.utils import geomean


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path


class TestRunKey:
    def test_stable(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        assert a == b

    def test_differs_by_policy(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("pdip_44"), 100, 10, 1,
                                 None)
        assert a != b

    def test_differs_by_budget(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 200, 10, 1,
                                 None)
        assert a != b

    def test_differs_by_config(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 MachineConfig(btb_entries=4096))
        assert a != b

    def test_default_config_matches_none(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 MachineConfig())
        assert a == b


class TestStoreLoad:
    def test_roundtrip(self, tmp_cache):
        stats = SimulationStats()
        stats.instructions = 1234
        stats.cycles = 987
        stats.l1i_misses = 55
        result_cache.store("abc", stats)
        loaded = result_cache.load("abc")
        assert loaded.instructions == 1234
        assert loaded.cycles == 987
        assert loaded.l1i_misses == 55

    def test_missing_key(self, tmp_cache):
        assert result_cache.load("nope") is None

    def test_disabled_by_env(self, tmp_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        result_cache.store("xyz", SimulationStats())
        assert result_cache.load("xyz") is None


class TestRunBenchmark:
    def test_cache_hit_reproduces(self, tmp_cache):
        a = run_benchmark("noop", "baseline", instructions=3000, warmup=500)
        files = list(tmp_cache.glob("*.json"))
        assert len(files) == 1
        b = run_benchmark("noop", "baseline", instructions=3000, warmup=500)
        assert a.ipc == b.ipc
        assert list(tmp_cache.glob("*.json")) == files

    def test_no_cache_flag(self, tmp_cache):
        run_benchmark("noop", "baseline", instructions=2000, warmup=300,
                      use_cache=False)
        assert not list(tmp_cache.glob("*.json"))


class TestRetryTmpCleanup:
    """A crashed worker's partial temp file must not survive into the
    retry round (regression: a truncated ``<key>.<pid>.tmp`` could be
    renamed over the real result by a later writer on the same pid)."""

    def test_cleanup_stale_tmp_removes_only_matching_key(self, tmp_cache):
        key = "deadbeef"
        (tmp_cache / (key + ".123.tmp")).write_text('{"trunc')
        (tmp_cache / (key + ".456.tmp")).write_text("")
        other = tmp_cache / "cafef00d.123.tmp"
        other.write_text("x")
        assert result_cache.cleanup_stale_tmp(key) == 2
        assert not list(tmp_cache.glob(key + ".*.tmp"))
        assert other.exists()

    def test_cleanup_missing_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "absent"))
        assert result_cache.cleanup_stale_tmp("deadbeef") == 0

    def test_retry_round_cleans_partial_artifacts(self, tmp_cache,
                                                  monkeypatch):
        spec = get_policy("baseline")
        key = result_cache.run_key("noop", spec, 2000, 300, 1, None)
        calls = {"n": 0}

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                # die mid-write, leaving a truncated temp file behind
                (tmp_cache / (key + ".999.tmp")).write_text('{"cycles":')
                raise RuntimeError("transient worker failure")
            assert not list(tmp_cache.glob(key + ".*.tmp")), \
                "retry ran against a dirty slate"
            stats = SimulationStats()
            stats.instructions, stats.cycles = 2000, 100
            return stats, 0.0, os.getpid(), None

        monkeypatch.setattr(runner_mod, "_simulate_cell", flaky)
        monkeypatch.setattr(runner_mod, "_BACKOFF_S", 0.01)
        results = runner_mod.run_suite_parallel(
            ["baseline"], benchmarks=["noop"], instructions=2000,
            warmup=300, jobs=1, retries=2)
        assert calls["n"] == 2
        assert results["noop"]["baseline"].cycles == 100
        assert not list(tmp_cache.glob(key + ".*.tmp"))


class TestSuite:
    def test_grid_shape(self, tmp_cache):
        res = run_suite(["baseline", "pdip_44"], benchmarks=["noop"],
                        instructions=2500, warmup=400)
        assert set(res.keys()) == {"noop"}
        assert set(res["noop"].keys()) == {"baseline", "pdip_44"}

    def test_speedup(self):
        a = SimulationStats()
        a.instructions, a.cycles = 1000, 400
        b = SimulationStats()
        b.instructions, b.cycles = 1000, 500
        assert speedup(a, b) == pytest.approx(1.25)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(SimulationStats(), SimulationStats())

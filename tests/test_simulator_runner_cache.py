"""Tests for the suite runner and the on-disk result cache."""

import os

import pytest

from repro.simulator import cache as result_cache
from repro.simulator.config import MachineConfig
from repro.simulator.policies import get_policy
from repro.simulator.runner import run_benchmark, run_suite, speedup
from repro.simulator.stats import SimulationStats
from repro.utils import geomean


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path


class TestRunKey:
    def test_stable(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        assert a == b

    def test_differs_by_policy(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("pdip_44"), 100, 10, 1,
                                 None)
        assert a != b

    def test_differs_by_budget(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 200, 10, 1,
                                 None)
        assert a != b

    def test_differs_by_config(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 MachineConfig(btb_entries=4096))
        assert a != b

    def test_default_config_matches_none(self):
        a = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 None)
        b = result_cache.run_key("noop", get_policy("baseline"), 100, 10, 1,
                                 MachineConfig())
        assert a == b


class TestStoreLoad:
    def test_roundtrip(self, tmp_cache):
        stats = SimulationStats()
        stats.instructions = 1234
        stats.cycles = 987
        stats.l1i_misses = 55
        result_cache.store("abc", stats)
        loaded = result_cache.load("abc")
        assert loaded.instructions == 1234
        assert loaded.cycles == 987
        assert loaded.l1i_misses == 55

    def test_missing_key(self, tmp_cache):
        assert result_cache.load("nope") is None

    def test_disabled_by_env(self, tmp_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        result_cache.store("xyz", SimulationStats())
        assert result_cache.load("xyz") is None


class TestRunBenchmark:
    def test_cache_hit_reproduces(self, tmp_cache):
        a = run_benchmark("noop", "baseline", instructions=3000, warmup=500)
        files = list(tmp_cache.glob("*.json"))
        assert len(files) == 1
        b = run_benchmark("noop", "baseline", instructions=3000, warmup=500)
        assert a.ipc == b.ipc
        assert list(tmp_cache.glob("*.json")) == files

    def test_no_cache_flag(self, tmp_cache):
        run_benchmark("noop", "baseline", instructions=2000, warmup=300,
                      use_cache=False)
        assert not list(tmp_cache.glob("*.json"))


class TestSuite:
    def test_grid_shape(self, tmp_cache):
        res = run_suite(["baseline", "pdip_44"], benchmarks=["noop"],
                        instructions=2500, warmup=400)
        assert set(res.keys()) == {"noop"}
        assert set(res["noop"].keys()) == {"baseline", "pdip_44"}

    def test_speedup(self):
        a = SimulationStats()
        a.instructions, a.cycles = 1000, 400
        b = SimulationStats()
        b.instructions, b.cycles = 1000, 500
        assert speedup(a, b) == pytest.approx(1.25)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(SimulationStats(), SimulationStats())

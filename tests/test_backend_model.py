"""Tests for the back-end occupancy model."""

import pytest

from repro.backend.model import BackendModel


def backend(**kw):
    kw.setdefault("rob_entries", 64)
    kw.setdefault("retire_width", 4)
    kw.setdefault("depth", 3)
    kw.setdefault("stall_prob", 0.0)
    kw.setdefault("issue_empty_threshold", 4)
    return BackendModel(seed=1, **kw)


class TestAdmission:
    def test_admit_occupies_slots(self):
        be = backend()
        assert be.admit("e1", 10, cycle=0)
        assert be.occupancy == 10
        assert be.free_slots() == 54

    def test_admit_rejects_when_full(self):
        be = backend(rob_entries=8)
        assert be.admit("e1", 8, cycle=0)
        assert not be.admit("e2", 1, cycle=0)


class TestRetirement:
    def test_nothing_retires_before_depth(self):
        be = backend(depth=5)
        be.admit("e1", 4, cycle=0)
        assert be.tick(cycle=2) == 0

    def test_retires_after_depth(self):
        be = backend(depth=3, retire_width=4)
        be.admit("e1", 4, cycle=0)
        assert be.tick(cycle=3) == 4
        assert be.occupancy == 0

    def test_retire_width_bounds_per_cycle(self):
        be = backend(retire_width=4)
        be.admit("e1", 10, cycle=0)
        assert be.tick(cycle=5) == 4
        assert be.tick(cycle=6) == 4
        assert be.tick(cycle=7) == 2

    def test_block_callback_on_completion(self):
        be = backend(retire_width=4)
        retired = []
        be.admit("e1", 6, cycle=0)
        be.tick(cycle=5, on_retire_block=retired.append)
        assert retired == []  # 4 of 6 retired
        be.tick(cycle=6, on_retire_block=retired.append)
        assert retired == ["e1"]

    def test_in_order_retirement(self):
        be = backend(retire_width=8)
        retired = []
        be.admit("a", 4, cycle=0)
        be.admit("b", 4, cycle=1)
        be.tick(cycle=10, on_retire_block=retired.append)
        assert retired == ["a", "b"]

    def test_stall_prob_one_never_retires(self):
        be = backend(stall_prob=1.0)
        be.admit("e1", 4, cycle=0)
        for c in range(10, 20):
            assert be.tick(cycle=c) == 0
        assert be.stall_cycles == 10

    def test_injected_stall_blocks_retirement(self):
        be = backend()
        be.admit("e1", 4, cycle=0)
        be.inject_stall(cycle=5, duration=10)
        assert be.tick(cycle=10) == 0
        assert be.tick(cycle=15) == 4


class TestWrongPath:
    def test_wrong_path_blocks_do_not_retire(self):
        be = backend()
        be.admit("wp", 4, cycle=0, is_wrong_path=True)
        assert be.tick(cycle=10) == 0

    def test_wrong_path_blocks_younger_correct_work(self):
        """In-order window: a wrong-path block at the head blocks younger
        correct-path blocks until the squash."""
        be = backend()
        be.admit("wp", 4, cycle=0, is_wrong_path=True)
        be.admit("ok", 4, cycle=0)
        assert be.tick(cycle=10) == 0
        assert be.squash_wrong_path() == 4
        assert be.tick(cycle=11) == 4

    def test_squash_frees_occupancy(self):
        be = backend()
        be.admit("wp", 10, cycle=0, is_wrong_path=True)
        assert be.occupancy == 10
        be.squash_wrong_path()
        assert be.occupancy == 0
        assert be.squashed_instructions == 10


class TestIssueQueueEmpty:
    def test_empty_below_threshold(self):
        be = backend(issue_empty_threshold=4)
        assert be.issue_queue_empty
        be.admit("e1", 3, cycle=0)
        assert be.issue_queue_empty
        be.admit("e2", 2, cycle=0)
        assert not be.issue_queue_empty

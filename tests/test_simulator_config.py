"""Tests for MachineConfig and HierarchyConfig."""

import dataclasses

import pytest

from repro.memory.hierarchy import HierarchyConfig
from repro.simulator.config import MachineConfig


class TestMachineConfig:
    def test_defaults_match_table1_structures(self):
        cfg = MachineConfig()
        assert cfg.ftq_depth == 24
        assert cfg.decode_width == 12
        assert cfg.rob_entries == 512
        assert cfg.btb_entries == 8192
        assert cfg.pq_capacity == 40

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().ftq_depth = 5

    def test_scaled_override(self):
        cfg = MachineConfig().scaled(ftq_depth=48)
        assert cfg.ftq_depth == 48
        assert cfg.decode_width == 12

    def test_with_l1i_kb(self):
        cfg = MachineConfig().with_l1i_kb(16)
        assert cfg.hierarchy.l1i_size_kb == 16
        # other hierarchy fields preserved
        assert cfg.hierarchy.l2_size_kb == MachineConfig().hierarchy.l2_size_kb

    def test_with_l1i_kb_does_not_mutate_original(self):
        base = MachineConfig()
        base.with_l1i_kb(16)
        assert base.hierarchy.l1i_size_kb == 8


class TestHierarchyConfig:
    def test_scaled_defaults(self):
        h = HierarchyConfig()
        assert h.l1i_size_kb == 8
        assert h.l2_size_kb == 128
        assert h.l3_size_kb == 1024

    def test_paper_table1(self):
        h = HierarchyConfig.paper_table1()
        assert h.l1i_size_kb == 32
        assert h.l2_size_kb == 1024
        assert h.l3_size_kb == 2048
        # latencies unchanged by the scaling
        assert h.l1_hit_latency == HierarchyConfig().l1_hit_latency

    def test_scaling_preserves_level_ratios(self):
        """The scaled hierarchy keeps L1 < L2 < L3 with the same relative
        ordering of latencies as Table 1."""
        h = HierarchyConfig()
        assert h.l1i_size_kb < h.l2_size_kb < h.l3_size_kb
        assert (h.l1_hit_latency < h.l2_hit_latency < h.l3_hit_latency
                < h.memory_latency)

    def test_itlb_defaults_off(self):
        assert not HierarchyConfig().itlb_enabled

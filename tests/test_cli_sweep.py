"""CLI coverage for ``repro sweep``, ``repro dash``, ``repro jobs --watch``."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_endpoint, _watch_jobs, build_parser, main
from repro.service.server import DEFAULT_PORT

SPEC = {
    "name": "cli",
    "axes": {"benchmark": ["noop"], "policy": ["baseline", "pdip_44"]},
    "defaults": {"instructions": 2000, "warmup": 300},
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_STORE", raising=False)


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "cli.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


class TestParser:
    def test_sweep_subcommands(self, spec_path):
        args = build_parser().parse_args(["sweep", "plan", spec_path,
                                          "--cells", "--format", "json"])
        assert args.sweep_command == "plan"
        assert args.cells and args.format == "json"
        args = build_parser().parse_args(
            ["sweep", "run", spec_path, "--jobs", "2", "--endpoint",
             "host:9999", "--max-in-flight", "4", "--report", "r.json"])
        assert args.sweep_command == "run"
        assert args.endpoint == "host:9999"
        assert args.max_in_flight == 4
        args = build_parser().parse_args(["sweep", "status", spec_path,
                                          "--store", "/tmp/s"])
        assert args.sweep_command == "status"
        assert args.store == "/tmp/s"

    def test_sweep_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_jobs_watch_flag(self):
        args = build_parser().parse_args(["jobs", "--watch", "0.5"])
        assert args.watch == 0.5
        assert build_parser().parse_args(["jobs"]).watch is None

    def test_dash_args(self):
        args = build_parser().parse_args(["dash", "--port", "9001", "--open"])
        assert args.port == 9001
        assert args.open

    def test_parse_endpoint(self):
        assert _parse_endpoint("host:9999") == ("host", 9999)
        assert _parse_endpoint(":9999") == ("127.0.0.1", 9999)
        assert _parse_endpoint("host") == ("host", DEFAULT_PORT)


class TestSweepCommands:
    def test_plan_text_and_json(self, spec_path, capsys):
        assert main(["sweep", "plan", spec_path, "--cells"]) == 0
        out = capsys.readouterr().out
        assert "sweep cli: 2 cells" in out
        assert "noop/baseline seed=1" in out

        assert main(["sweep", "plan", spec_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "cli"
        assert len(doc["cells"]) == 2
        assert all("key" in cell for cell in doc["cells"])

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"axes": {"benchmark": ["nope"],
                                             "policy": ["baseline"]}}))
        assert main(["sweep", "plan", str(path)]) == 2
        assert "sweep spec error" in capsys.readouterr().out

    def test_run_then_status_then_warm_run(self, spec_path, tmp_path,
                                           capsys):
        store = str(tmp_path / "store")
        assert main(["sweep", "status", spec_path, "--store", store,
                     "--format", "json"]) == 0
        before = json.loads(capsys.readouterr().out)
        assert before["counts"]["pending"] == 2

        assert main(["sweep", "run", spec_path, "--store", store,
                     "--jobs", "2", "--quiet", "--format", "json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed"] == 2 and first["failed"] == 0

        assert main(["sweep", "status", spec_path, "--store", store,
                     "--format", "json"]) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["counts"] == {"store": 2, "cache": 0,
                                   "failed": 0, "pending": 0}

        assert main(["sweep", "run", spec_path, "--store", store,
                     "--jobs", "2", "--quiet", "--format", "json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store"] == 2 and warm["executed"] == 0

    def test_run_writes_report(self, spec_path, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["sweep", "run", spec_path, "--jobs", "2", "--quiet",
                     "--state", "", "--report", str(report)]) == 0
        data = json.loads(report.read_text())
        assert data["counts"]["executed"] == 2


class FakeWatchClient:
    """health()/jobs() stub: n good polls, then Ctrl-C."""

    def __init__(self, polls=2):
        self.calls = 0
        self.polls = polls

    def health(self):
        self.calls += 1
        if self.calls > self.polls:
            raise KeyboardInterrupt
        return {"state": "serving", "queued": 1, "running": 0, "jobs": 3}

    def jobs(self):
        return [{"id": "j1", "benchmark": "noop", "policy": "baseline",
                 "seed": 1, "state": "queued", "attempts": 0}]


class TestWatch:
    def test_watch_redraws_until_interrupt(self, capsys):
        client = FakeWatchClient(polls=2)
        assert _watch_jobs(client, 0.0) == 0
        out = capsys.readouterr().out
        assert out.count("server serving") == 2
        assert "\x1b[2J" in out  # ANSI clear between redraws
        assert "j1" in out

    def test_watch_survives_unreachable_server(self, capsys):
        class Flaky(FakeWatchClient):
            def health(self):
                self.calls += 1
                if self.calls == 1:
                    raise ConnectionError("refused")
                raise KeyboardInterrupt

        assert _watch_jobs(Flaky(), 0.0) == 0
        assert "server unreachable" in capsys.readouterr().out

"""Session tests: attach/detach wiring, harvest, and the zero-overhead
invariant — telemetry-off runs stay bit-identical to the seed goldens,
and telemetry-*on* runs produce the same stats too (the recorder only
observes, never perturbs)."""

import pytest

from repro.simulator.runner import run_benchmark
from repro.telemetry import TelemetrySession
from repro.telemetry.handle import NULL_RECORDER
from repro.telemetry.session import HARVEST_SOURCES

from tests.test_golden_stats import GOLDEN


def _machine():
    from repro.simulator.policies import build_machine, get_policy
    from repro.simulator.runner import get_layout
    from repro.workloads.profiles import get_profile

    layout = get_layout("noop", seed=1)
    return build_machine(layout, get_profile("noop"), get_policy("pdip_44"),
                         seed=1)


class TestAttachDetach:
    def test_attach_swaps_all_handles(self):
        machine = _machine()
        session = TelemetrySession(capacity=64)
        session.attach(machine)
        for bearer in (machine, machine.hierarchy, machine.pq,
                       machine.prefetcher):
            assert bearer.tel is session.recorder
        session.detach(machine)
        for bearer in (machine, machine.hierarchy, machine.pq,
                       machine.prefetcher):
            assert bearer.tel is NULL_RECORDER

    def test_attach_is_idempotent(self):
        machine = _machine()
        session = TelemetrySession(capacity=64)
        session.attach(machine).attach(machine)
        assert len(session._attached) == len(
            {id(b) for b in session._attached})
        session.detach(machine)
        assert machine.tel is NULL_RECORDER

    def test_fresh_machine_starts_null(self):
        machine = _machine()
        for bearer in (machine, machine.hierarchy, machine.pq,
                       machine.prefetcher):
            assert bearer.tel is NULL_RECORDER

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_CAPACITY", "128")
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "4")
        session = TelemetrySession.from_env()
        assert session.recorder.capacity == 128
        assert session.recorder.sample_every == 4


class TestHarvest:
    def test_harvest_populates_metrics(self):
        session = TelemetrySession()
        run_benchmark("noop", "pdip_44", instructions=5000, warmup=1000,
                      seed=1, use_cache=False, telemetry=session)
        snapshot = session.registry.snapshot()
        # pipeline counters harvested under stable dotted names
        for name in ("pq.requests", "l1i.demand_accesses", "sim.cycles",
                     "pdip.candidate_events", "prefetch.issued"):
            assert name in snapshot, name
        assert snapshot["l1i.demand_accesses"] > 0
        # per-kind event counts mirrored as counters
        for kind, count in session.recorder.kind_counts.items():
            assert snapshot["events." + kind] == count

    def test_harvest_sources_resolve_on_a_real_machine(self):
        # every row in the harvest table must point at a live attribute
        # on the default machine build — a renamed counter otherwise
        # silently vanishes from all future summaries
        from repro.telemetry.session import _resolve

        machine = _machine()
        machine.run(2000, warmup=500)
        for name, path in HARVEST_SOURCES:
            value = _resolve(machine, path)
            assert isinstance(value, (int, float)), (name, path)

    def test_summary_shape(self):
        session = TelemetrySession(capacity=32)
        run_benchmark("noop", "pdip_44", instructions=2000, warmup=500,
                      seed=1, use_cache=False, telemetry=session)
        summary = session.summary()
        assert set(summary) == {"recorder", "metrics"}
        assert summary["recorder"]["capacity"] == 32
        assert summary["recorder"]["events_offered"] > 0


class TestBitIdenticalStats:
    @pytest.mark.parametrize(
        "bench,policy,seed,instructions,warmup,want", GOLDEN[:1],
        ids=["%s-%s-s%d" % (b, p, s) for b, p, s, _, _, _ in GOLDEN[:1]])
    def test_telemetry_off_matches_seed_golden(self, bench, policy, seed,
                                               instructions, warmup, want):
        # the telemetry integration must not move a single counter on
        # the default (handle-only) path
        stats = run_benchmark(bench, policy, instructions=instructions,
                              warmup=warmup, seed=seed, use_cache=False)
        assert stats.to_dict() == want

    @pytest.mark.parametrize(
        "bench,policy,seed,instructions,warmup,want", GOLDEN[:1],
        ids=["%s-%s-s%d" % (b, p, s) for b, p, s, _, _, _ in GOLDEN[:1]])
    def test_telemetry_on_matches_seed_golden(self, bench, policy, seed,
                                              instructions, warmup, want):
        # ... and attaching the live recorder must only observe: same
        # golden stats, bit for bit, with the full trace captured
        session = TelemetrySession()
        stats = run_benchmark(bench, policy, instructions=instructions,
                              warmup=warmup, seed=seed, use_cache=False,
                              telemetry=session)
        assert stats.to_dict() == want
        assert session.recorder.seq > 0

    def test_sampling_and_capacity_do_not_perturb(self):
        base = run_benchmark("noop", "pdip_44", instructions=5000,
                             warmup=1000, seed=1, use_cache=False)
        session = TelemetrySession(capacity=16, sample_every=7)
        got = run_benchmark("noop", "pdip_44", instructions=5000,
                            warmup=1000, seed=1, use_cache=False,
                            telemetry=session)
        assert got.to_dict() == base.to_dict()
        assert len(session.recorder) <= 16

    def test_telemetry_is_horizon_aware(self):
        # the probe contract is auto-disable; the telemetry contract is
        # the opposite: cycle skipping stays ON, and each jump leaves a
        # batched fast_forward event in the trace
        machine = _machine()
        session = TelemetrySession()
        session.attach(machine)
        machine.run(5000, warmup=1000)
        session.detach(machine)
        assert machine.fast_forwards > 0
        jumps = session.recorder.events("fast_forward")
        assert len(jumps) == machine.fast_forwards
        assert (sum(e[3]["cycles"] for e in jumps)
                == machine.fast_forwarded_cycles)

    def test_trace_is_deterministic_across_runs(self):
        events = []
        for _ in range(2):
            session = TelemetrySession()
            run_benchmark("noop", "pdip_44", instructions=2000, warmup=500,
                          seed=1, use_cache=False, telemetry=session)
            events.append(session.recorder.events())
        assert events[0] == events[1]

    def test_telemetry_run_bypasses_cache_read(self, tmp_path, monkeypatch):
        # a cached result has no events to replay; a telemetry run must
        # simulate fresh (and may still share the cache for writes)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_benchmark("noop", "pdip_44", instructions=2000, warmup=500,
                      seed=1)  # populate the cache
        session = TelemetrySession()
        run_benchmark("noop", "pdip_44", instructions=2000, warmup=500,
                      seed=1, telemetry=session)
        assert session.recorder.seq > 0

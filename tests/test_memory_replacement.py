"""Tests for LRU and EMISSARY replacement policies."""

import pytest

from repro.memory.cache import CacheLineState
from repro.memory.replacement import EmissaryPolicy, LRUPolicy


def ways(*states):
    return {s.tag: s for s in states}


def line(tag, lru=0, p_bit=False):
    return CacheLineState(tag=tag, lru=lru, p_bit=p_bit)


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        w = ways(line(1, lru=5), line(2, lru=1), line(3, lru=9))
        assert policy.victim(w) == 2

    def test_promote_is_noop(self):
        policy = LRUPolicy()
        state = line(1)
        assert policy.on_promote(state, ways(state)) is False
        assert not state.p_bit


class TestEmissaryVictim:
    def test_prefers_non_priority(self):
        policy = EmissaryPolicy(seed=1)
        w = ways(line(1, lru=1, p_bit=True), line(2, lru=5), line(3, lru=9))
        assert policy.victim(w) == 2  # LRU among non-priority

    def test_all_priority_falls_back_to_lru(self):
        policy = EmissaryPolicy(seed=1)
        w = ways(line(1, lru=5, p_bit=True), line(2, lru=1, p_bit=True))
        assert policy.victim(w) == 2

    def test_priority_shielded_even_when_oldest(self):
        policy = EmissaryPolicy(seed=1)
        w = ways(line(1, lru=0, p_bit=True), line(2, lru=100))
        assert policy.victim(w) == 2


class TestEmissaryPromotion:
    def test_promotion_probability_one(self):
        policy = EmissaryPolicy(promote_prob=1.0, seed=1)
        state = line(1)
        assert policy.on_promote(state, ways(state))
        assert state.p_bit
        assert policy.promotions == 1

    def test_promotion_probability_zero(self):
        policy = EmissaryPolicy(promote_prob=0.0, seed=1)
        state = line(1)
        assert not policy.on_promote(state, ways(state))
        assert not state.p_bit

    def test_already_promoted_returns_true(self):
        policy = EmissaryPolicy(promote_prob=0.0, seed=1)
        state = line(1, p_bit=True)
        assert policy.on_promote(state, ways(state))

    def test_protected_ways_cap(self):
        policy = EmissaryPolicy(protected_ways=2, promote_prob=1.0, seed=1)
        states = [line(i) for i in range(4)]
        w = ways(*states)
        assert policy.on_promote(states[0], w)
        assert policy.on_promote(states[1], w)
        # cap reached: third promotion refused
        assert not policy.on_promote(states[2], w)
        assert policy.priority_count(w) == 2

    def test_promotion_rate_statistical(self):
        policy = EmissaryPolicy(promote_prob=0.25, protected_ways=8, seed=1)
        promoted = 0
        for i in range(2000):
            state = line(i)
            if policy.on_promote(state, {i: state}):
                promoted += 1
        assert 0.20 < promoted / 2000 < 0.30

    def test_paper_probability_recorded(self):
        assert EmissaryPolicy.PAPER_PROMOTE_PROB == pytest.approx(1 / 32)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            EmissaryPolicy(protected_ways=-1)
        with pytest.raises(ValueError):
            EmissaryPolicy(promote_prob=1.5)

"""Tests for the PDIP controller."""

import pytest

from repro.branch.bpu import MispredictKind
from repro.core.fec import FECEvent, TriggerType
from repro.core.pdip import PDIPConfig, PDIPController
from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.workloads.layout import BasicBlock


def make_pdip(**config_kw):
    hierarchy = MemoryHierarchy(config=HierarchyConfig())
    pq = PrefetchQueue(hierarchy)
    cfg = PDIPConfig(**config_kw)
    return PDIPController(pq, config=cfg, seed=1), pq, hierarchy


def event(line=900, starvation=20, backend=True, trigger=55,
          ttype=TriggerType.MISPREDICT,
          resteer=MispredictKind.COND_MISPREDICT):
    return FECEvent(line=line, starvation_cycles=starvation,
                    backend_starved=backend, trigger_line=trigger,
                    trigger_type=ttype, resteer_kind=resteer)


def ftq_entry(lines):
    block = BasicBlock(bid=0, addr=lines[0] * 64, num_instructions=4)
    return FTQEntry(block=block, lines=list(lines), enqueue_cycle=0)


class TestInsertion:
    def test_qualifying_event_inserted(self):
        pdip, _, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event()], cycle=0)
        assert pdip.inserted_events == 1
        assert [l for l, _ in pdip.table.lookup(55)] == [900]

    def test_low_cost_filtered(self):
        pdip, _, _ = make_pdip(insert_prob=1.0, high_cost_threshold=10)
        pdip.on_fec_events([event(starvation=5)], cycle=0)
        assert pdip.inserted_events == 0

    def test_backend_stall_required(self):
        pdip, _, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(backend=False)], cycle=0)
        assert pdip.inserted_events == 0

    def test_filters_can_be_disabled(self):
        pdip, _, _ = make_pdip(insert_prob=1.0, require_high_cost=False,
                               require_backend_stall=False)
        pdip.on_fec_events([event(starvation=1, backend=False)], cycle=0)
        assert pdip.inserted_events == 1

    def test_return_triggers_ignored(self):
        pdip, _, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events(
            [event(resteer=MispredictKind.RETURN_MISPREDICT)], cycle=0)
        assert pdip.inserted_events == 0

    def test_return_triggers_kept_when_configured(self):
        pdip, _, _ = make_pdip(insert_prob=1.0, ignore_return_triggers=False)
        pdip.on_fec_events(
            [event(resteer=MispredictKind.RETURN_MISPREDICT)], cycle=0)
        assert pdip.inserted_events == 1

    def test_missing_trigger_skipped(self):
        pdip, _, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(trigger=None)], cycle=0)
        assert pdip.inserted_events == 0

    def test_insert_probability_statistical(self):
        pdip, _, _ = make_pdip(insert_prob=0.25)
        for i in range(1000):
            pdip.on_fec_events([event(line=900 + i, trigger=55 + i)], cycle=0)
        assert 0.18 < pdip.inserted_events / 1000 < 0.32


class TestTriggerLookup:
    def test_hit_requests_prefetch(self):
        pdip, pq, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(trigger=55, line=900)], cycle=0)
        pdip.on_ftq_enqueue(ftq_entry([55]), cycle=10)
        assert pdip.prefetch_requests == 1
        assert len(pq) == 1

    def test_miss_requests_nothing(self):
        pdip, pq, _ = make_pdip(insert_prob=1.0)
        pdip.on_ftq_enqueue(ftq_entry([123]), cycle=10)
        assert pdip.prefetch_requests == 0

    def test_multi_line_entry_checks_every_line(self):
        pdip, pq, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(trigger=56, line=900)], cycle=0)
        pdip.on_ftq_enqueue(ftq_entry([55, 56]), cycle=10)
        assert pdip.prefetch_requests == 1

    def test_mask_expansion_prefetches_following_blocks(self):
        pdip, pq, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(trigger=55, line=900),
                            event(trigger=55, line=902)], cycle=0)
        pdip.on_ftq_enqueue(ftq_entry([55]), cycle=10)
        assert pdip.prefetch_requests == 2


class TestTriggerDistribution:
    def test_distribution_counts_issued(self):
        pdip, _, _ = make_pdip(insert_prob=1.0)
        pdip.on_fec_events([event(trigger=55, line=900)], cycle=0)
        pdip.on_fec_events(
            [event(trigger=66, line=910, ttype=TriggerType.LAST_TAKEN,
                   resteer=None)], cycle=0)
        for _ in range(3):
            pdip.on_ftq_enqueue(ftq_entry([55]), cycle=10)
        pdip.on_ftq_enqueue(ftq_entry([66]), cycle=10)
        mis, last = pdip.trigger_distribution()
        assert mis == pytest.approx(0.75)
        assert last == pytest.approx(0.25)

    def test_empty_distribution(self):
        pdip, _, _ = make_pdip()
        assert pdip.trigger_distribution() == (0.0, 0.0)


class TestStorage:
    def test_storage_matches_table(self):
        pdip, _, _ = make_pdip(assoc=8)
        assert pdip.storage_kb == pytest.approx(43.5)

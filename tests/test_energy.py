"""Tests for the SRAM area/energy model (Table 5 substrate)."""

import pytest

from repro.energy.model import CoreEnergyModel, pdip_overheads
from repro.energy.sram import SRAMModel


class TestSRAM:
    def test_bits(self):
        sram = SRAMModel("t", num_sets=512, assoc=8,
                         payload_bits_per_way=77, tag_bits=10)
        assert sram.total_bits == 512 * 8 * 87

    def test_area_scales_with_bits(self):
        small = SRAMModel("s", 512, 2, 77, 10).estimate()
        big = SRAMModel("b", 512, 8, 77, 10).estimate()
        assert big.area_mm2 > 3.5 * small.area_mm2

    def test_read_energy_scales_with_assoc(self):
        """Tag match touches every way, so energy grows with assoc."""
        low = SRAMModel("l", 512, 2, 77, 10).estimate()
        high = SRAMModel("h", 512, 16, 77, 10).estimate()
        assert high.read_energy_pj > low.read_energy_pj

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SRAMModel("x", 0, 8, 77, 10)


class TestPDIPOverheads:
    def test_four_configs(self):
        rows = pdip_overheads()
        assert [r.label for r in rows] == [
            "PDIP(11)", "PDIP(22)", "PDIP(44)", "PDIP(87)"]

    def test_table_sizes(self):
        rows = pdip_overheads()
        assert rows[0].table_kb == pytest.approx(10.875)
        assert rows[2].table_kb == pytest.approx(43.5)

    def test_area_monotone(self):
        rows = pdip_overheads()
        areas = [r.area_pct for r in rows]
        assert areas == sorted(areas)
        assert areas[0] > 0

    def test_energy_saturates(self):
        """The paper's energy column saturates (0.62 -> 0.64 from 44 to
        87 KB) because lookups read one way regardless of assoc."""
        rows = pdip_overheads()
        e44, e87 = rows[2].energy_pct, rows[3].energy_pct
        assert e87 / e44 < 1.6

    def test_overheads_small_vs_core(self):
        for row in pdip_overheads():
            assert row.energy_pct < 5.0
            assert row.area_pct < 10.0

    def test_paper_magnitude(self):
        """Same order of magnitude as Table 5 (fractions of a percent
        energy, a few percent area at most)."""
        rows = {r.label: r for r in pdip_overheads()}
        assert 0.05 < rows["PDIP(44)"].energy_pct < 3.0
        assert 0.1 < rows["PDIP(44)"].area_pct < 5.0

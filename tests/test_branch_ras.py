"""Tests for the return address stack."""

import pytest

from repro.branch.ras import ReturnAddressStack


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_pop_empty_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x300)
        assert ras.peek() == 0x300
        assert len(ras) == 1

    def test_peek_empty(self):
        assert ReturnAddressStack(depth=4).peek() is None

    def test_len(self):
        ras = ReturnAddressStack(depth=4)
        for i in range(3):
            ras.push(i)
        assert len(ras) == 3

    def test_overflow_wraps_and_loses_oldest(self):
        ras = ReturnAddressStack(depth=3)
        for addr in (1, 2, 3, 4):
            ras.push(addr)
        # depth 3: the oldest (1) was overwritten
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_interleaved_lifo(self):
        ras = ReturnAddressStack(depth=16)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 1

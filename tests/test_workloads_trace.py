"""Tests for trace recording and replay."""

import io

import pytest

from repro.simulator.machine import Machine
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import (
    TraceError,
    TraceHeader,
    TraceReplayer,
    record_to_string,
)
from repro.workloads.walker import PathWalker

SMALL = WorkloadProfile(name="trace-test", num_functions=50, num_handlers=6,
                        num_leaves=8, call_depth=3)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(SMALL, seed=4)


@pytest.fixture(scope="module")
def trace_text(layout):
    walker = PathWalker(layout, seed=4)
    return record_to_string(walker, 2000, workload=SMALL.name, seed=4)


class TestHeader:
    def test_roundtrip(self):
        h = TraceHeader(workload="x", seed=7, num_blocks=99)
        assert TraceHeader.parse(h.line()) == h

    def test_rejects_garbage(self):
        with pytest.raises(TraceError):
            TraceHeader.parse("not a trace")

    def test_rejects_wrong_version(self):
        with pytest.raises(TraceError):
            TraceHeader.parse("REPRO-TRACE v99 workload=x seed=1 blocks=5")


class TestRecord:
    def test_header_first_line(self, trace_text):
        assert trace_text.splitlines()[0].startswith("REPRO-TRACE v1")

    def test_record_count(self, trace_text):
        assert len(trace_text.splitlines()) == 2001


class TestReplay:
    def test_replay_matches_recording(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text)
        walker = PathWalker(layout, seed=4)
        for _ in range(2000):
            a = replayer.next_event()
            b = walker.next_event()
            assert a.block.bid == b.block.bid
            assert a.taken == b.taken
            assert a.next_bid == b.next_bid
            assert a.target_addr == b.target_addr

    def test_exhaustion_raises(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text)
        for _ in range(2000):
            replayer.next_event()
        with pytest.raises(StopIteration):
            replayer.next_event()

    def test_loop_wraps(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text, loop=True,
                                 verify=False)
        for _ in range(4500):
            replayer.next_event()
        assert replayer.events == 4500

    def test_len(self, layout, trace_text):
        assert len(TraceReplayer(layout, trace_text)) == 2000

    def test_stack_tracking(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text)
        for _ in range(500):
            replayer.next_event()
        assert isinstance(replayer.snapshot_stack(), list)


class TestValidation:
    def test_rejects_wrong_layout(self, trace_text):
        other = generate_layout(SMALL.scaled(num_functions=51), seed=4)
        with pytest.raises(TraceError):
            TraceReplayer(other, trace_text)

    def test_rejects_empty(self, layout):
        with pytest.raises(TraceError):
            TraceReplayer(layout, "")

    def test_rejects_header_only(self, layout):
        header = TraceHeader(workload="x", seed=4,
                             num_blocks=layout.num_blocks)
        with pytest.raises(TraceError):
            TraceReplayer(layout, header.line() + "\n")

    def test_rejects_bad_fields(self, layout):
        header = TraceHeader(workload="x", seed=4,
                             num_blocks=layout.num_blocks)
        with pytest.raises(TraceError):
            TraceReplayer(layout, header.line() + "\n1 2\n")

    def test_rejects_out_of_range_block(self, layout):
        header = TraceHeader(workload="x", seed=4,
                             num_blocks=layout.num_blocks)
        bad = header.line() + "\n999999 1 0\n"
        with pytest.raises(TraceError):
            TraceReplayer(layout, bad)

    def test_rejects_discontinuous_records(self, layout, trace_text):
        lines = trace_text.splitlines()
        # splice in a record whose block does not match the predecessor's
        # successor
        parts = lines[5].split()
        wrong = str((int(parts[0]) + 1) % layout.num_blocks)
        lines[5] = " ".join([wrong, parts[1], parts[2]])
        with pytest.raises(TraceError):
            TraceReplayer(layout, "\n".join(lines))

    def test_comments_and_blanks_ignored(self, layout, trace_text):
        lines = trace_text.splitlines()
        lines.insert(1, "# a comment")
        lines.insert(2, "")
        replayer = TraceReplayer(layout, "\n".join(lines))
        assert len(replayer) == 2000


class TestTraceDrivenMachine:
    def test_machine_runs_from_trace(self, layout):
        walker = PathWalker(layout, seed=4)
        text = record_to_string(walker, 12_000, workload=SMALL.name, seed=4)
        replayer = TraceReplayer(layout, text, loop=True)
        machine = Machine(layout, SMALL, walker=replayer, seed=4)
        stats = machine.run(4000, warmup=500)
        assert stats.instructions >= 4000

    def test_trace_run_matches_live_run(self, layout):
        """Replaying a recorded trace must reproduce the live run's
        committed path exactly (same instruction count per cycle budget)."""
        walker = PathWalker(layout, seed=4,
                            indirect_noise=SMALL.indirect_noise)
        text = record_to_string(walker, 30_000, workload=SMALL.name, seed=4)
        live = Machine(layout, SMALL, seed=4)
        live_stats = live.run(5000, warmup=1000)
        replayed = Machine(layout, SMALL,
                           walker=TraceReplayer(layout, text), seed=4)
        replay_stats = replayed.run(5000, warmup=1000)
        assert replay_stats.cycles == live_stats.cycles
        assert replay_stats.l1i_misses == live_stats.l1i_misses
        assert replay_stats.resteers == live_stats.resteers

"""Engine-level tests: discovery, suppressions, baseline round-trip."""

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.baseline import load_baseline, match_baseline, write_baseline
from repro.analysis.engine import Finding, discover, run_rules
from repro.analysis.rules import get_rules
from repro.analysis.rules.determinism import WallClockRule


def make_tree(tmp_path, files):
    """Write ``{relative path: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
    return tmp_path


def lint_tree(tmp_path, files, rules=None):
    root = make_tree(tmp_path, files)
    project = discover([root], root=root)
    return run_rules(project, rules if rules is not None else get_rules())


class TestDiscovery:
    def test_module_names_and_units(self, tmp_path):
        root = make_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/machine.py": "x = 1\n",
        })
        project = discover([root], root=root)
        module = project.get_by_suffix("simulator.machine")
        assert module is not None
        assert module.name == "pkg.simulator.machine"
        assert module.unit == "simulator"
        assert not module.is_package
        assert project.modules["pkg.simulator"].is_package

    def test_parse_error_becomes_finding(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/broken.py": "def f(:\n",
        })
        assert [f.rule for f in findings] == ["parse-error"]
        assert findings[0].path == "pkg/broken.py"

    def test_single_file_path(self, tmp_path):
        path = tmp_path / "lone.py"
        path.write_text("import time\n")
        project = discover([path], root=tmp_path)
        assert "lone" in project.modules


class TestSuppressions:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/simulator/__init__.py": "",
    }

    def _wallclock(self, tmp_path, body):
        files = dict(self.FILES)
        files["pkg/simulator/clock.py"] = body
        return lint_tree(tmp_path, files, rules=[WallClockRule()])

    def test_unsuppressed_fires(self, tmp_path):
        findings = self._wallclock(
            tmp_path, "import time\nt = time.time()\n")
        assert [f.rule for f in findings] == ["determinism-wallclock"]

    def test_same_line_suppression(self, tmp_path):
        findings = self._wallclock(
            tmp_path,
            "import time\n"
            "t = time.time()  # repro: lint-ignore[determinism-wallclock]\n",
        )
        assert findings == []

    def test_comment_line_above(self, tmp_path):
        findings = self._wallclock(
            tmp_path,
            "import time\n"
            "# repro: lint-ignore[determinism-wallclock]\n"
            "t = time.time()\n",
        )
        assert findings == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        findings = self._wallclock(
            tmp_path,
            "import time\n"
            "t = time.time()  # repro: lint-ignore[some-other-rule]\n",
        )
        assert len(findings) == 1

    def test_star_suppresses_everything(self, tmp_path):
        findings = self._wallclock(
            tmp_path,
            "import time\nt = time.time()  # repro: lint-ignore[*]\n",
        )
        assert findings == []


class TestBaseline:
    def _findings(self):
        return [
            Finding("rule-a", "pkg/a.py", 3, "first"),
            Finding("rule-a", "pkg/a.py", 9, "first"),
            Finding("rule-b", "pkg/b.py", 1, "second"),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        entries = load_baseline(path)
        new, grandfathered, stale = match_baseline(self._findings(), entries)
        assert new == []
        assert len(grandfathered) == 3
        assert sum(stale.values()) == 0

    def test_line_moves_do_not_churn(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        moved = [
            Finding("rule-a", "pkg/a.py", 30, "first"),
            Finding("rule-a", "pkg/a.py", 90, "first"),
            Finding("rule-b", "pkg/b.py", 10, "second"),
        ]
        new, grandfathered, _ = match_baseline(moved, load_baseline(path))
        assert new == []
        assert len(grandfathered) == 3

    def test_multiset_matching(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings()[:1])  # one entry for "first"
        new, grandfathered, _ = match_baseline(
            self._findings()[:2], load_baseline(path))
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        new, grandfathered, stale = match_baseline([], load_baseline(path))
        assert new == [] and grandfathered == []
        assert sum(stale.values()) == 3

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRegistry:
    def test_select_by_name(self):
        rules = get_rules(["determinism-wallclock"])
        assert [r.name for r in rules] == ["determinism-wallclock"]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["no-such-rule"])


class TestUnusedSuppressions:
    def test_stale_marker_is_flagged_as_warning(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clean.py":
                "x = 1  # repro: lint-ignore[determinism-wallclock]\n",
        }, [WallClockRule()])
        assert [f.rule for f in findings] == ["unused-suppression"]
        assert findings[0].severity == "warning"
        assert "determinism-wallclock" in findings[0].message

    def test_used_marker_is_not_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clock.py":
                "import time\n"
                "t = time.time()  # repro: lint-ignore[determinism-wallclock]\n",
        }, [WallClockRule()])
        assert findings == []

    def test_star_marker_is_never_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clean.py": "x = 1  # repro: lint-ignore[*]\n",
        }, [WallClockRule()])
        assert findings == []

    def test_marker_for_unexecuted_rule_is_not_flagged(self, tmp_path):
        # with --select the marked rule never ran, so the marker cannot
        # be judged stale
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clean.py":
                "x = 1  # repro: lint-ignore[determinism-unseeded-rng]\n",
        }, [WallClockRule()])
        assert findings == []

    def test_comment_only_marker_covering_next_line_counts_as_used(
            self, tmp_path):
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clock.py":
                "import time\n"
                "# repro: lint-ignore[determinism-wallclock]\n"
                "t = time.time()\n",
        }, [WallClockRule()])
        assert findings == []

    def test_unused_warning_survives_baseline_free_run(self, tmp_path):
        # warnings do not flip the exit path, but they are reported
        findings = lint_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/simulator/__init__.py": "",
            "pkg/simulator/clean.py":
                "x = 1  # repro: lint-ignore[determinism-wallclock]\n",
        }, [WallClockRule()])
        assert all(f.severity == "warning" for f in findings)

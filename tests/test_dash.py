"""Dashboard routes, sweep registry, and state assembly.

Server-side coverage for the ``repro dash`` stack: the stdlib-only
HTML page, the ``/dash/state`` JSON document, and the ``/sweeps``
registration/progress routes a running sweep feeds. Live tests reuse
the service Harness (real event loop, real loopback HTTP); the
``repro.dash`` helpers are additionally unit-tested as pure functions.
"""

from __future__ import annotations

import time

import pytest

from repro.dash import build_state, render_page, service_metrics, sweep_rows
from repro.service.client import ServiceError
from repro.service.store import ResultStore
from repro.sweeps import compile_spec, parse_spec, run_sweep

from tests.test_service_server import CELL, Harness, harness  # noqa: F401


class TestStateHelpers:
    def test_service_metrics_namespaced_snapshot(self):
        snap = service_metrics({"executed": 3}, {"queued": 2.0})
        assert snap == {"service.executed": 3, "service.queued": 2.0}

    def test_sweep_rows_running_first_then_newest(self):
        rows = sweep_rows({
            "a": {"id": "a", "state": "done", "created": 30.0},
            "b": {"id": "b", "state": "running", "created": 10.0},
            "c": {"id": "c", "state": "failed", "created": 40.0},
            "d": {"id": "d", "state": "running", "created": 20.0},
        })
        assert [r["id"] for r in rows] == ["d", "b", "c", "a"]

    def test_build_state_bounds_job_payload(self):
        jobs = ([{"id": "q", "state": "queued"}]
                + [{"id": "f%d" % i, "state": "done", "finished": float(i)}
                   for i in range(30)])
        state = build_state({"mode": "server"}, {}, {}, {}, jobs,
                            recent_jobs=5)
        assert state["jobs"]["total"] == 31
        assert state["jobs"]["queued"] == 1
        assert state["jobs"]["running"] == 0
        assert [j["id"] for j in state["jobs"]["active"]] == ["q"]
        # newest finished first, truncated to the bound
        assert [j["id"] for j in state["jobs"]["recent"]] == [
            "f29", "f28", "f27", "f26", "f25"]

    def test_render_page_is_selfcontained_html(self):
        page = render_page()
        assert page.lstrip().lower().startswith("<!doctype html>")
        assert "/dash/state" in page
        assert "<script" in page and "</html>" in page
        # no external fetches: everything inline, stdlib-only promise
        assert "http://" not in page and "https://" not in page


class TestSweepRoutes:
    def test_register_progress_and_list(self, harness):
        client = harness().client()
        sweep = client.register_sweep(name="demo", plan_digest="abc",
                                      total=4, benchmarks=["noop"],
                                      policies=["baseline", "pdip_44"])
        assert sweep["state"] == "running"
        assert sweep["total"] == 4
        client.sweep_progress(sweep["id"],
                              counts={"executed": 2},
                              grid={"noop|baseline": {"done": 1, "failed": 0,
                                                      "total": 2}})
        row = client.sweep(sweep["id"])
        assert row["counts"] == {"executed": 2}
        assert row["grid"]["noop|baseline"]["done"] == 1
        assert [s["id"] for s in client.sweeps()] == [sweep["id"]]
        client.sweep_progress(sweep["id"], state="done")
        assert client.sweep(sweep["id"])["state"] == "done"

    def test_unknown_sweep_404(self, harness):
        client = harness().client()
        with pytest.raises(ServiceError, match="404"):
            client.sweep("deadbeef")
        with pytest.raises(ServiceError, match="404"):
            client.sweep_progress("deadbeef", state="done")

    def test_bad_registration_and_progress_400(self, harness):
        client = harness().client()
        with pytest.raises(ServiceError, match="400"):
            client.register_sweep(name="bad", total=-1)
        sweep = client.register_sweep(name="ok", total=1)
        with pytest.raises(ServiceError, match="400"):
            client.sweep_progress(sweep["id"], state="exploded")

    def test_registry_evicts_terminal_oldest_first(self, harness):
        from repro.service.server import MAX_SWEEPS as limit

        client = harness().client()
        first = client.register_sweep(name="old-done", total=1)
        client.sweep_progress(first["id"], state="done")
        keeper = client.register_sweep(name="still-running", total=1)
        for i in range(limit - 1):
            client.register_sweep(name="filler-%d" % i, total=1)
        ids = {s["id"] for s in client.sweeps()}
        assert len(ids) == limit
        assert first["id"] not in ids      # terminal sweep evicted first
        assert keeper["id"] in ids         # running sweeps survive


class TestDashEndpoints:
    def test_dash_page_served_as_html(self, harness):
        client = harness().client()
        page = client.dash_page()
        assert "<title>repro dash</title>" in page
        assert page == render_page()

    def test_dash_state_document(self, harness, tmp_path):
        h = harness(store=ResultStore(tmp_path / "store"))
        client = h.client()
        client.wait(client.submit(**CELL)["id"], timeout=60)
        state = client.dash_state()
        assert set(state) == {"generated", "server", "counters", "metrics",
                              "sweeps", "jobs", "workers", "store"}
        assert state["server"]["mode"] == "server"
        assert state["workers"] is None  # coordinator-only block
        assert state["counters"]["executed"] == 1
        assert state["metrics"]["service.executed"] == 1
        assert state["jobs"]["total"] == 1
        assert state["store"]["rows"] == 1

    def test_live_sweep_appears_on_dashboard(self, harness, tmp_path):
        h = harness(jobs=2, store=ResultStore(tmp_path / "store"))
        client = h.client()
        plan = compile_spec(parse_spec({
            "name": "dash-e2e",
            "axes": {"benchmark": ["noop"],
                     "policy": ["baseline", "pdip_44"]},
            "defaults": {"instructions": 2000, "warmup": 300},
        }))
        report = run_sweep(plan, client=client, state_path="")
        assert report.counts["executed"] == 2

        (row,) = client.sweeps()
        assert row["name"] == "dash-e2e"
        assert row["plan_digest"] == plan.digest
        assert row["state"] == "done"
        assert row["counts"]["executed"] == 2
        assert row["grid"] == {
            "noop|baseline": {"done": 1, "failed": 0, "total": 1},
            "noop|pdip_44": {"done": 1, "failed": 0, "total": 1},
        }
        # and the state document carries it, running-first ordering aside
        state = client.dash_state()
        assert state["sweeps"][0]["id"] == row["id"]

    def test_sweep_against_server_without_dash_routes_still_runs(
            self, harness, tmp_path, monkeypatch):
        # a _DashFeed that cannot register degrades to silence, not failure
        from repro.service import client as client_mod

        h = harness(jobs=2, store=ResultStore(tmp_path / "store"))
        client = h.client()
        monkeypatch.setattr(
            client_mod.ServiceClient, "register_sweep",
            lambda self, **kw: (_ for _ in ()).throw(
                ServiceError(404, {"error": "not found"})))
        plan = compile_spec(parse_spec({
            "axes": {"benchmark": ["noop"], "policy": ["baseline"]},
            "defaults": {"instructions": 2000, "warmup": 300},
        }))
        report = run_sweep(plan, client=client, state_path="")
        assert report.counts["executed"] == 1
        assert client.sweeps() == []


class TestServiceModeResolution:
    def test_service_sweep_reports_store_source_on_rerun(
            self, harness, tmp_path):
        h = harness(jobs=2, store=ResultStore(tmp_path / "store"))
        client = h.client()
        plan = compile_spec(parse_spec({
            "axes": {"benchmark": ["noop"], "policy": ["baseline"]},
            "defaults": {"instructions": 2000, "warmup": 300},
        }))
        first = run_sweep(plan, client=client, state_path="")
        assert first.counts["executed"] == 1
        # the client has no local store handle: warm resolution happens
        # server-side and is reported back as source="store"
        second = run_sweep(plan, client=client, state_path="")
        assert second.counts["store"] == 1
        assert second.counts["executed"] == 0
        assert h.server.counters["executed"] == 1

"""Tests for the parallel suite runner: serial/parallel equivalence,
layout memoization, retry behavior, determinism, and manifest emission."""

import os
from pathlib import Path

import pytest

from repro.simulator import manifest as manifest_mod
from repro.simulator import runner
from repro.simulator.runner import (
    clear_layout_cache,
    get_layout,
    resolve_jobs,
    run_benchmark,
    run_suite,
    run_suite_parallel,
)

GRID = dict(instructions=3000, warmup=500)
POLICIES = ["baseline", "pdip_44"]
BENCHES = ["noop", "tatp"]


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
    return tmp_path


def _assert_grids_identical(a, b):
    assert set(a) == set(b)
    for bench in a:
        assert set(a[bench]) == set(b[bench])
        for policy in a[bench]:
            assert a[bench][policy].to_dict() == b[bench][policy].to_dict(), \
                (bench, policy)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(None, default=2) == 7

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None, default=4) == 4

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1

    def test_garbage_env_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestEquivalence:
    def test_parallel_matches_serial_cold_and_warm(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = run_suite(POLICIES, benchmarks=BENCHES, **GRID)

        # cold cache: every cell simulated in a worker process
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        cold = run_suite_parallel(POLICIES, benchmarks=BENCHES, jobs=2,
                                  **GRID)
        _assert_grids_identical(serial, cold)

        # warm cache: every cell served from disk
        warm = run_suite_parallel(POLICIES, benchmarks=BENCHES, jobs=2,
                                  **GRID)
        _assert_grids_identical(serial, warm)

    def test_serial_is_parallel_with_one_job(self, tmp_cache):
        res = run_suite(POLICIES, benchmarks=["noop"], **GRID)
        assert set(res["noop"]) == set(POLICIES)


class TestLayoutMemoization:
    def test_same_object_for_same_key(self):
        clear_layout_cache()
        assert get_layout("noop", seed=3) is get_layout("noop", seed=3)

    def test_distinct_across_seeds_and_benchmarks(self):
        clear_layout_cache()
        assert get_layout("noop", seed=1) is not get_layout("noop", seed=2)
        assert get_layout("noop", seed=1) is not get_layout("tatp", seed=1)

    def test_suite_generates_layout_once_per_benchmark(self, tmp_cache,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_layout_cache()
        calls = []
        real = runner.generate_layout

        def counting(profile, seed=0):
            calls.append((profile.name, seed))
            return real(profile, seed=seed)

        monkeypatch.setattr(runner, "generate_layout", counting)
        run_suite(["baseline", "2x_il1", "emissary"], benchmarks=["noop"],
                  **GRID)
        assert calls == [("noop", 1)]
        clear_layout_cache()


class TestDeterminism:
    def test_same_seed_identical_stats(self, tmp_cache):
        a = run_benchmark("noop", "baseline", seed=7, use_cache=False,
                          **GRID)
        b = run_benchmark("noop", "baseline", seed=7, use_cache=False,
                          **GRID)
        assert a.ipc == b.ipc
        assert a.l1i_mpki == b.l1i_mpki
        assert a.to_dict() == b.to_dict()

    def test_same_seed_identical_after_layout_cache_clear(self, tmp_cache):
        clear_layout_cache()
        a = run_benchmark("tatp", "pdip_44", seed=5, use_cache=False, **GRID)
        clear_layout_cache()
        b = run_benchmark("tatp", "pdip_44", seed=5, use_cache=False, **GRID)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_layout(self):
        shape = lambda l: [(b.bid, b.addr, b.num_instructions)
                           for b in l.blocks]
        clear_layout_cache()
        assert (shape(get_layout("noop", seed=1))
                != shape(get_layout("noop", seed=2)))


class TestRetries:
    def test_transient_failure_retried_serial(self, tmp_cache, monkeypatch):
        real = runner._simulate_cell
        failures = {"left": 1}

        def flaky(cell):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient worker failure")
            return real(cell)

        monkeypatch.setattr(runner, "_simulate_cell", flaky)
        manifest = manifest_mod.RunManifest(label="retry-test")
        res = run_suite_parallel(["baseline"], benchmarks=["noop"], jobs=1,
                                 manifest=manifest, **GRID)
        assert res["noop"]["baseline"].instructions > 0
        retried = [c for c in manifest.cells if c.attempts == 2]
        assert len(retried) == 1
        assert retried[0].status == "ok"

    def test_permanent_failure_raises_after_budget(self, tmp_cache,
                                                   monkeypatch):
        attempts = {"n": 0}

        def broken(cell):
            attempts["n"] += 1
            raise RuntimeError("permanent failure")

        monkeypatch.setattr(runner, "_simulate_cell", broken)
        manifest = manifest_mod.RunManifest(label="fail-test")
        with pytest.raises(RuntimeError, match="failed after 2 attempt"):
            run_suite_parallel(["baseline"], benchmarks=["noop"], jobs=1,
                               retries=1, manifest=manifest, **GRID)
        assert attempts["n"] == 2
        assert [c.status for c in manifest.cells] == ["failed"]


class TestGridDedup:
    def test_duplicate_cells_simulate_once(self, tmp_cache):
        manifest = manifest_mod.RunManifest(label="dedup-test")
        res = run_suite_parallel(["baseline", "baseline"],
                                 benchmarks=["noop"], jobs=1,
                                 manifest=manifest, **GRID)
        # both grid slots filled from one simulation
        assert res["noop"]["baseline"].instructions > 0
        simulated = [c for c in manifest.cells if not c.cache_hit]
        assert len([c for c in simulated if c.wall_time > 0]) == 1

    def test_warm_cells_not_resimulated(self, tmp_cache):
        run_suite_parallel(POLICIES, benchmarks=["noop"], jobs=1, **GRID)
        manifest = manifest_mod.RunManifest(label="warm-test")
        run_suite_parallel(POLICIES, benchmarks=["noop"], jobs=1,
                           manifest=manifest, **GRID)
        assert all(c.cache_hit for c in manifest.cells)
        assert all(c.worker == "cache" for c in manifest.cells)


class TestParallelSpeedup:
    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="speedup measurement needs >= 4 cores")
    def test_cold_grid_2x_faster_with_4_jobs(self, tmp_path, monkeypatch):
        import time

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        grid = dict(instructions=30_000, warmup=6_000)
        benches = ["noop", "tatp", "voter", "smallbank"]
        policies = ["baseline", "pdip_44", "eip_46"]

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        t0 = time.perf_counter()
        serial = run_suite(policies, benchmarks=benches, **grid)
        serial_s = time.perf_counter() - t0

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        clear_layout_cache()
        t0 = time.perf_counter()
        par = run_suite_parallel(policies, benchmarks=benches, jobs=4,
                                 **grid)
        parallel_s = time.perf_counter() - t0

        _assert_grids_identical(serial, par)
        assert serial_s / parallel_s >= 2.0, (serial_s, parallel_s)


class TestManifestEmission:
    def test_every_suite_run_writes_a_manifest(self, tmp_cache):
        run_suite(["baseline"], benchmarks=["noop"], **GRID)
        path = manifest_mod.latest()
        assert path is not None
        data = manifest_mod.load(path)
        assert data["schema"] == manifest_mod.SCHEMA_VERSION
        cells = data["cells"]
        assert [c["benchmark"] for c in cells] == ["noop"]
        record = cells[0]
        for field in ("policy", "seed", "key", "config_hash", "cache_hit",
                      "wall_time", "worker", "attempts", "status"):
            assert field in record
        assert data["summary"]["cache_misses"] == 1

    def test_disabled_by_env(self, tmp_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
        run_suite(["baseline"], benchmarks=["noop"], **GRID)
        assert manifest_mod.latest() is None

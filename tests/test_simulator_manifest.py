"""Tests for the run-manifest/telemetry module."""

import json

import pytest

from repro.simulator import manifest as manifest_mod
from repro.simulator.config import MachineConfig
from repro.simulator.manifest import CellRecord, RunManifest


@pytest.fixture
def tmp_manifests(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_MANIFEST", raising=False)
    return tmp_path


def _record(benchmark="noop", policy="baseline", cache_hit=False,
            wall_time=0.5, worker="main", attempts=1, status="ok"):
    return CellRecord(benchmark=benchmark, policy=policy, seed=1,
                      instructions=1000, warmup=100, key="k" + policy,
                      config_hash="abc", cache_hit=cache_hit,
                      wall_time=wall_time, worker=worker,
                      attempts=attempts, status=status)


class TestConfigHash:
    def test_none_matches_default(self):
        assert (manifest_mod.config_hash(None)
                == manifest_mod.config_hash(MachineConfig()))

    def test_differs_for_non_default(self):
        assert (manifest_mod.config_hash(None)
                != manifest_mod.config_hash(MachineConfig(btb_entries=4096)))


class TestSummary:
    def test_counts(self):
        m = RunManifest(jobs=2)
        m.add(_record(cache_hit=True, wall_time=0.0, worker="cache"))
        m.add(_record(policy="pdip_44", wall_time=1.5, worker="pid:10"))
        m.add(_record(policy="eip_46", wall_time=0.5, worker="pid:11",
                      attempts=3))
        s = m.summary()
        assert s["cells"] == 3
        assert s["cache_hits"] == 1
        assert s["cache_misses"] == 2
        assert s["hit_rate"] == pytest.approx(1 / 3)
        assert s["retries"] == 2
        assert s["sim_wall_time_s"] == pytest.approx(2.0)
        assert s["max_cell_time_s"] == pytest.approx(1.5)
        assert s["workers"] == {"pid:10": 1, "pid:11": 1}

    def test_empty(self):
        s = RunManifest().summary()
        assert s["cells"] == 0
        assert s["hit_rate"] == 0.0
        assert s["max_cell_time_s"] == 0.0


class TestWriteLoad:
    def test_roundtrip(self, tmp_manifests):
        m = RunManifest(label="unit", jobs=4)
        m.add(_record())
        path = m.write()
        assert path is not None and path.exists()
        data = manifest_mod.load(path)
        assert data["schema"] == manifest_mod.SCHEMA_VERSION
        assert data["label"] == "unit"
        assert data["jobs"] == 4
        assert data["cells"][0]["benchmark"] == "noop"
        assert data["summary"]["cells"] == 1

    def test_latest_picks_newest(self, tmp_manifests):
        first = RunManifest(label="first")
        first.write(tmp_manifests / "run-1.json")
        second = RunManifest(label="second")
        second.write(tmp_manifests / "run-2.json")
        # force distinct mtimes regardless of filesystem resolution
        import os
        os.utime(tmp_manifests / "run-1.json", (1, 1))
        latest = manifest_mod.latest()
        assert latest == tmp_manifests / "run-2.json"

    def test_latest_empty_dir(self, tmp_manifests):
        assert manifest_mod.latest() is None

    def test_disabled(self, tmp_manifests, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
        assert RunManifest().write() is None
        assert list(tmp_manifests.iterdir()) == []

    def test_explicit_path(self, tmp_manifests):
        target = tmp_manifests / "sub" / "my.json"
        m = RunManifest()
        assert m.write(target) == target
        assert (json.loads(target.read_text())["schema"]
                == manifest_mod.SCHEMA_VERSION)


class TestRenderSummary:
    def test_mentions_key_numbers(self, tmp_manifests):
        m = RunManifest(label="render", jobs=2)
        m.add(_record(cache_hit=True, wall_time=0.0, worker="cache"))
        m.add(_record(policy="pdip_44", wall_time=1.25, worker="pid:42"))
        text = manifest_mod.render_summary(m.to_dict())
        assert "render" in text
        assert "jobs=2" in text
        assert "hits 1 / misses 1" in text
        assert "pid:42:1" in text

    def test_handles_loaded_json(self, tmp_manifests):
        m = RunManifest(label="loaded")
        m.add(_record())
        path = m.write()
        text = manifest_mod.render_summary(manifest_mod.load(path))
        assert "loaded" in text


class TestManifestDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "mm"))
        assert manifest_mod.manifest_dir() == tmp_path / "mm"

    def test_defaults_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert manifest_mod.manifest_dir() == tmp_path / "manifests"

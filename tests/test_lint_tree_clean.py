"""The shipped tree must lint clean — ``repro lint`` is a CI gate."""

import io
import json
from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.cli import run_lint
from repro.cli import main

REPO = Path(__file__).resolve().parents[1]


class TestShippedTree:
    def test_repro_lint_exits_clean(self):
        out, err = io.StringIO(), io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], out=out, err=err)
        assert code == 0, f"lint findings on the shipped tree:\n{out.getvalue()}"

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO / "lint_baseline.json")
        assert sum(baseline.values()) == 0

    def test_json_format(self):
        out = io.StringIO()
        code = run_lint(
            [str(REPO / "src" / "repro")], fmt="json", out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["summary"]["errors"] == 0
        assert payload["findings"] == []


class TestCliWiring:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "determinism-wallclock",
            "layering-forbidden-import",
            "hotpath-missing-slots",
            "stats-parity-fast-forward",
            "config-unknown-field",
        ):
            assert name in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--select", "bogus-rule"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2

    def test_lint_via_cli_on_tree(self, capsys):
        assert main(["lint", str(REPO / "src" / "repro")]) == 0

"""The shipped tree must lint clean — ``repro lint`` is a CI gate."""

import io
import json
from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.cli import run_lint
from repro.cli import main

REPO = Path(__file__).resolve().parents[1]


class TestShippedTree:
    def test_repro_lint_exits_clean(self):
        out, err = io.StringIO(), io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], out=out, err=err)
        assert code == 0, f"lint findings on the shipped tree:\n{out.getvalue()}"

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO / "lint_baseline.json")
        assert sum(baseline.values()) == 0

    def test_json_format(self):
        out = io.StringIO()
        code = run_lint(
            [str(REPO / "src" / "repro")], fmt="json", out=out)
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["summary"]["errors"] == 0
        assert payload["findings"] == []


class TestCliWiring:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "determinism-wallclock",
            "layering-forbidden-import",
            "hotpath-missing-slots",
            "stats-parity-fast-forward",
            "config-unknown-field",
        ):
            assert name in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--select", "bogus-rule"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2

    def test_lint_via_cli_on_tree(self, capsys):
        assert main(["lint", str(REPO / "src" / "repro")]) == 0


class TestGithubFormatAndBudget:
    def _dirty_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        sim = pkg / "simulator"
        sim.mkdir()
        (sim / "__init__.py").write_text("")
        (sim / "clock.py").write_text("import time\nt = time.time()\n")
        return tmp_path

    def test_github_annotations_on_findings(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        out, err = io.StringIO(), io.StringIO()
        code = run_lint([str(root)], fmt="github", no_baseline=True,
                        out=out, err=err)
        assert code == 1
        lines = out.getvalue().splitlines()
        annotations = [l for l in lines if l.startswith("::error ")]
        assert annotations, out.getvalue()
        assert "file=pkg/simulator/clock.py" in annotations[0]
        assert "line=2" in annotations[0]
        assert "title=determinism-wallclock" in annotations[0]

    def test_github_format_clean_tree(self):
        out = io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], fmt="github", out=out)
        assert code == 0
        assert "::error" not in out.getvalue()

    def test_timings_table_printed(self):
        out = io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], timings=True, out=out)
        assert code == 0
        text = out.getvalue()
        assert "rule timings:" in text
        for name in ("async-blocking-call", "route-conformance", "total"):
            assert name in text

    def test_budget_exceeded_fails(self):
        out, err = io.StringIO(), io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], budget=0.0,
                        out=out, err=err)
        assert code == 1
        assert "over the 0s budget" in err.getvalue()

    def test_generous_budget_passes(self):
        out = io.StringIO()
        code = run_lint([str(REPO / "src" / "repro")], budget=300.0, out=out)
        assert code == 0

    def test_cli_flags_parse(self, capsys):
        assert main(["lint", str(REPO / "src" / "repro"),
                     "--format", "github", "--timings",
                     "--budget", "300"]) == 0
        out = capsys.readouterr().out
        assert "rule timings:" in out

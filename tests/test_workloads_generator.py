"""Tests for the synthetic program generator."""

import pytest

from repro.workloads.generator import MAX_CALL_SITES, generate_layout
from repro.workloads.layout import BranchKind
from repro.workloads.profiles import WorkloadProfile, get_profile

SMALL = WorkloadProfile(name="small-test", num_functions=60, num_handlers=8,
                        num_leaves=10, call_depth=3)


@pytest.fixture(scope="module")
def small_layout():
    return generate_layout(SMALL, seed=7)


@pytest.fixture(scope="module")
def cassandra_layout():
    return generate_layout(get_profile("cassandra"), seed=1)


class TestGeneratorStructure:
    def test_validates(self, small_layout):
        small_layout.validate()

    def test_deterministic(self):
        a = generate_layout(SMALL, seed=3)
        b = generate_layout(SMALL, seed=3)
        assert [blk.addr for blk in a.blocks] == [blk.addr for blk in b.blocks]
        assert [blk.kind for blk in a.blocks] == [blk.kind for blk in b.blocks]

    def test_seed_changes_layout(self):
        a = generate_layout(SMALL, seed=3)
        b = generate_layout(SMALL, seed=4)
        assert ([blk.addr for blk in a.blocks]
                != [blk.addr for blk in b.blocks])

    def test_function_count(self, small_layout):
        assert len(small_layout.functions) == SMALL.num_functions

    def test_dispatcher_loops_forever(self, small_layout):
        dispatcher = small_layout.functions[0]
        kinds = [small_layout.blocks[b].kind for b in dispatcher.blocks]
        assert BranchKind.INDIRECT_CALL in kinds
        assert BranchKind.DIRECT in kinds
        # the direct jump targets the dispatcher entry
        loop = [small_layout.blocks[b] for b in dispatcher.blocks
                if small_layout.blocks[b].kind is BranchKind.DIRECT][0]
        assert loop.taken_target == dispatcher.entry

    def test_dispatcher_calls_handlers(self, small_layout):
        call = small_layout.blocks[1]
        assert call.kind is BranchKind.INDIRECT_CALL
        # every target is a function entry
        entries = {f.entry for f in small_layout.functions}
        assert set(call.indirect_targets) <= entries

    def test_every_function_ends_in_return(self, small_layout):
        for func in small_layout.functions[1:]:
            last = small_layout.blocks[func.blocks[-1]]
            assert last.kind is BranchKind.RETURN

    def test_leaves_make_no_calls(self, small_layout):
        first_leaf = SMALL.num_functions - SMALL.num_leaves
        for func in small_layout.functions[first_leaf:]:
            for bid in func.blocks:
                assert small_layout.blocks[bid].kind not in (
                    BranchKind.CALL, BranchKind.INDIRECT_CALL)

    def test_call_sites_capped(self, small_layout):
        for func in small_layout.functions[1:]:
            calls = sum(1 for bid in func.blocks
                        if small_layout.blocks[bid].kind in
                        (BranchKind.CALL, BranchKind.INDIRECT_CALL))
            assert calls <= MAX_CALL_SITES

    def test_calls_target_function_entries(self, small_layout):
        entries = {f.entry for f in small_layout.functions}
        for blk in small_layout.blocks:
            if blk.kind is BranchKind.CALL:
                assert blk.taken_target in entries
            if blk.kind is BranchKind.INDIRECT_CALL:
                assert set(blk.indirect_targets) <= entries

    def test_addresses_non_overlapping(self, small_layout):
        spans = sorted((b.addr, b.end_addr) for b in small_layout.blocks)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_blocks_within_function_contiguous(self, small_layout):
        for func in small_layout.functions:
            for a, b in zip(func.blocks, func.blocks[1:]):
                assert (small_layout.blocks[a].end_addr
                        == small_layout.blocks[b].addr)

    def test_indirect_blocks_have_patterns(self, small_layout):
        for blk in small_layout.blocks:
            if blk.kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
                assert blk.indirect_pattern
                assert all(0 <= i < len(blk.indirect_targets)
                           for i in blk.indirect_pattern)


class TestLoopDiscipline:
    """Loop bodies must not contain calls, indirects, or other back-edges."""

    def test_no_calls_inside_loop_bodies(self, cassandra_layout):
        lay = cassandra_layout
        unsafe = (BranchKind.CALL, BranchKind.INDIRECT_CALL,
                  BranchKind.INDIRECT)
        for blk in lay.blocks:
            if (blk.kind is BranchKind.COND and blk.taken_target is not None
                    and blk.taken_target < blk.bid):
                body = range(blk.taken_target, blk.bid)
                for bid in body:
                    assert lay.blocks[bid].kind not in unsafe

    def test_no_nested_back_edges(self, cassandra_layout):
        lay = cassandra_layout
        for blk in lay.blocks:
            if (blk.kind is BranchKind.COND and blk.taken_target is not None
                    and blk.taken_target < blk.bid):
                for bid in range(blk.taken_target, blk.bid):
                    inner = lay.blocks[bid]
                    assert not (inner.kind is BranchKind.COND
                                and inner.taken_target is not None
                                and inner.taken_target < inner.bid)


class TestFootprint:
    def test_cassandra_footprint_dwarfs_l1i(self, cassandra_layout):
        # scaled L1-I is 8 KB = 128 lines; the footprint must be 10x+
        assert cassandra_layout.footprint_lines() > 1280

    def test_profiles_ordered_by_size(self):
        big = generate_layout(get_profile("cassandra"), seed=1)
        small = generate_layout(get_profile("noop"), seed=1)
        assert big.footprint_lines() > small.footprint_lines()

"""Run-diff triage tests: artifact loading, counter/event divergence,
CLI exit codes, and the bench telemetry refusal."""

import argparse
import json

import pytest

from repro.cli import main
from repro.telemetry.diff import (
    diff_counters,
    diff_paths,
    first_event_divergence,
    load_artifact,
)
from repro.telemetry.export import write_jsonl
from repro.telemetry.recorder import TraceRecorder


def _run_dump(path, stats, trace=None, telemetry=None):
    dump = {"schema": 1, "benchmark": "noop", "policy": "pdip_44",
            "seed": 1, "stats": stats}
    if trace is not None:
        dump["trace"] = trace
    if telemetry is not None:
        dump["telemetry"] = telemetry
    path.write_text(json.dumps(dump))
    return path


def _manifest(path, cells):
    path.write_text(json.dumps({"schema": 2, "cells": cells}))
    return path


class TestDiffCounters:
    def test_first_divergence_is_in_declaration_order(self):
        a = {"cycles": 10, "resteers": 3, "l1i_misses": 7}
        b = {"cycles": 10, "resteers": 4, "l1i_misses": 9}
        out = diff_counters(a, b)
        assert [d.name for d in out] == ["resteers", "l1i_misses"]

    def test_missing_keys_reported(self):
        out = diff_counters({"x": 1}, {"y": 2})
        assert {(d.name, d.a, d.b) for d in out} == {("x", 1, None),
                                                     ("y", None, 2)}

    def test_extra_dict_skipped(self):
        assert diff_counters({"extra": 1}, {"extra": 2}) == []


class TestFirstEventDivergence:
    def test_equal_streams(self):
        events = [(0, 1, "pq_issue", {"line": 2})]
        assert first_event_divergence(events, list(events)) is None

    def test_mid_stream_divergence(self):
        a = [(0, 1, "pq_issue", {"line": 2}), (1, 3, "pq_issue", {"line": 4})]
        b = [(0, 1, "pq_issue", {"line": 2}), (1, 3, "pq_issue", {"line": 9})]
        fed = first_event_divergence(a, b)
        assert fed["index"] == 1
        assert fed["a"]["args"] == {"line": 4}
        assert fed["b"]["args"] == {"line": 9}

    def test_length_mismatch(self):
        a = [(0, 1, "pq_issue", {"line": 2})]
        fed = first_event_divergence(a, [])
        assert fed["index"] == 0
        assert fed["b"] is None


class TestDiffPaths:
    def test_matching_run_dumps(self, tmp_path):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        b = _run_dump(tmp_path / "b.json", {"cycles": 5})
        report = diff_paths(a, b)
        assert report.verdict == "match"
        assert report.exit_code == 0

    def test_diverging_run_dumps_name_first_counter(self, tmp_path):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5, "resteers": 1})
        b = _run_dump(tmp_path / "b.json", {"cycles": 6, "resteers": 2})
        report = diff_paths(a, b)
        assert report.verdict == "diverged"
        assert report.exit_code == 1
        assert report.first_diverging_counter == "cycles"
        assert "cycles" in report.render()

    def test_run_dumps_with_traces_get_event_triage(self, tmp_path):
        ra, rb = TraceRecorder(capacity=8), TraceRecorder(capacity=8)
        ra.emit("pq_issue", 1, line=1)
        rb.emit("pq_issue", 1, line=2)
        ta = write_jsonl(ra.events(), tmp_path / "a.jsonl")
        tb = write_jsonl(rb.events(), tmp_path / "b.jsonl")
        a = _run_dump(tmp_path / "a.json", {"cycles": 5},
                      trace={"jsonl": str(ta)})
        b = _run_dump(tmp_path / "b.json", {"cycles": 5},
                      trace={"jsonl": str(tb)})
        report = diff_paths(a, b)
        assert report.verdict == "diverged"
        assert report.first_event_divergence["index"] == 0

    def test_ring_drop_note(self, tmp_path):
        tel = {"recorder": {"events_dropped_ring": 17}}
        a = _run_dump(tmp_path / "a.json", {"cycles": 5}, telemetry=tel)
        b = _run_dump(tmp_path / "b.json", {"cycles": 5})
        report = diff_paths(a, b)
        assert any("ring dropped 17" in n for n in report.notes)

    def test_trace_vs_trace(self, tmp_path):
        rec = TraceRecorder(capacity=8)
        rec.emit("pq_issue", 1, line=1)
        ta = write_jsonl(rec.events(), tmp_path / "a.jsonl")
        tb = write_jsonl(rec.events(), tmp_path / "b.jsonl")
        assert diff_paths(ta, tb).verdict == "match"

    def test_manifest_vs_manifest(self, tmp_path):
        cell = {"benchmark": "noop", "policy": "pdip_44", "seed": 1,
                "instructions": 100, "warmup": 10}
        a = _manifest(tmp_path / "a.json",
                      [dict(cell, stats={"cycles": 5})])
        b = _manifest(tmp_path / "b.json",
                      [dict(cell, stats={"cycles": 8})])
        report = diff_paths(a, b)
        assert report.verdict == "diverged"
        assert report.counters[0].cell == "noop/pdip_44/s1"

    def test_mismatched_kinds_incomparable(self, tmp_path):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        b = _manifest(tmp_path / "b.json", [])
        report = diff_paths(a, b)
        assert report.verdict == "incomparable"
        assert report.exit_code == 2

    def test_unreadable_input_incomparable(self, tmp_path):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        report = diff_paths(a, tmp_path / "missing.json")
        assert report.exit_code == 2

    def test_bare_counter_dict_accepted(self, tmp_path):
        # a raw {counter: value} dump (e.g. stats.to_dict() piped to a
        # file) should classify as a run dump
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"cycles": 5, "resteers": 2}))
        kind, doc = load_artifact(path)
        assert kind == "run"
        assert doc["stats"]["cycles"] == 5

    def test_report_json_is_machine_readable(self, tmp_path):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        b = _run_dump(tmp_path / "b.json", {"cycles": 6})
        doc = diff_paths(a, b).to_dict()
        assert doc["verdict"] == "diverged"
        assert doc["first_diverging_counter"] == "cycles"
        json.dumps(doc)  # must serialize


class TestCli:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_diff_exit_codes(self, tmp_path, capsys):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        b = _run_dump(tmp_path / "b.json", {"cycles": 6})
        assert main(["diff", str(a), str(a)]) == 0
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "first diverging counter: cycles" in out

    def test_diff_json_format(self, tmp_path, capsys):
        a = _run_dump(tmp_path / "a.json", {"cycles": 5})
        b = _run_dump(tmp_path / "b.json", {"cycles": 6})
        assert main(["diff", str(a), str(b), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["first_diverging_counter"] == "cycles"

    def test_trace_run_exports_artifacts(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "run", "noop", "--instructions", "2000",
                     "--warmup", "500", "--out", "t"]) == 0
        chrome = json.loads((tmp_path / "t.trace.json").read_text())
        assert chrome["traceEvents"]
        run = json.loads((tmp_path / "t.run.json").read_text())
        assert run["stats"]["cycles"] > 0
        assert run["telemetry"]["recorder"]["events_offered"] > 0
        assert (tmp_path / "t.trace.jsonl").exists()

    def test_trace_run_pair_diffs_nonzero(self, tmp_path, capsys,
                                          monkeypatch):
        # the acceptance-criteria loop: two seeds, diff names a counter
        monkeypatch.chdir(tmp_path)
        for seed in (1, 2):
            assert main(["trace", "run", "noop", "--instructions", "2000",
                         "--warmup", "500", "--seed", str(seed),
                         "--out", "s%d" % seed]) == 0
        assert main(["diff", "s1.run.json", "s1.run.json"]) == 0
        capsys.readouterr()
        assert main(["diff", "s1.run.json", "s2.run.json"]) == 1
        assert "first diverging counter" in capsys.readouterr().out

    def test_run_stats_out_dump_is_diffable(self, tmp_path, capsys):
        out = tmp_path / "dump.json"
        assert main(["run", "noop", "pdip_44", "--instructions", "2000",
                     "--warmup", "500", "--stats-out", str(out)]) == 0
        assert main(["diff", str(out), str(out)]) == 0


class TestBenchRefusal:
    def test_bench_refuses_with_telemetry_on(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        from repro.bench import main as bench_main

        # refusal happens before any argument is consumed
        assert bench_main(argparse.Namespace()) == 2
        err = capsys.readouterr().err
        assert "REPRO_TELEMETRY" in err
        assert "refusing" in err

    def test_cli_bench_refuses_too(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert main(["bench", "--quick"]) == 2

"""Tests for the ITTAGE indirect target predictor."""

import pytest

from repro.branch.ittage import ITTAGEPredictor


def train(predictor, pc, targets, rounds=1, measure_last=True):
    correct = total = 0
    for r in range(rounds):
        for target in targets:
            pred = predictor.predict(pc)
            if not measure_last or r == rounds - 1:
                total += 1
                correct += (pred == target)
            predictor.update(pc, target, pred)
    return correct / total


class TestITTAGE:
    def test_cold_predicts_none(self):
        it = ITTAGEPredictor(seed=1)
        assert it.predict(0x5000) is None

    def test_learns_monomorphic(self):
        it = ITTAGEPredictor(seed=1)
        acc = train(it, 0x5000, [0x9000] * 30, rounds=2)
        assert acc > 0.95

    def test_base_last_target_fallback(self):
        it = ITTAGEPredictor(seed=1)
        pred = it.predict(0x5000)
        it.update(0x5000, 0x9000, pred)
        assert it.predict(0x5000) == 0x9000

    def test_learns_alternating_targets(self):
        """A,B,A,B is history-correlated — the tagged tables must learn it
        well beyond the 50% a last-target predictor achieves."""
        it = ITTAGEPredictor(seed=1)
        acc = train(it, 0x5000, [0x9000, 0xA000] * 30, rounds=8)
        assert acc > 0.75

    def test_distinct_sites_independent(self):
        it = ITTAGEPredictor(seed=1)
        for _ in range(60):
            for pc, target in ((0x5000, 0x9000), (0x6000, 0xB000)):
                pred = it.predict(pc)
                it.update(pc, target, pred)
        assert it.predict(0x5000) == 0x9000
        it.update(0x5000, 0x9000, 0x9000)
        assert it.predict(0x6000) == 0xB000

    def test_mispredict_counting(self):
        it = ITTAGEPredictor(seed=1)
        pred = it.predict(0x100)
        it.update(0x100, 0x200, pred)  # cold: None != 0x200 -> mispredict
        assert it.mispredicts == 1
        assert it.predictions == 1

    def test_adapts_to_target_change(self):
        it = ITTAGEPredictor(seed=1)
        train(it, 0x5000, [0x9000] * 20)
        acc = train(it, 0x5000, [0xC000] * 30, rounds=2)
        assert acc > 0.8

    def test_storage_positive(self):
        assert ITTAGEPredictor().storage_kb > 0

    def test_history_lengths_geometric(self):
        it = ITTAGEPredictor(num_tables=5, min_history=4, max_history=64)
        assert it.hist_lens[0] == 4
        assert it.hist_lens[-1] == 64
        assert it.hist_lens == sorted(it.hist_lens)

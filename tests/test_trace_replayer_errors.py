"""Error paths of the internal TraceReplayer (repro.workloads.trace).

These are the simulator's *own* trace dumps (``repro trace``), not the
external ``repro ingest`` format — see ``tests/test_traces_schema.py``
for the latter. Every rejection here must be a ``TraceError`` with a
message that names the offending line or record, because a replayed
trace that silently simulates garbage is worse than one that crashes.
"""

from __future__ import annotations

import pytest

from repro.workloads import PathWalker, generate_layout, get_profile
from repro.workloads.trace import (
    MAGIC,
    TraceError,
    TraceHeader,
    TraceReplayer,
    record_to_string,
)


@pytest.fixture(scope="module")
def layout():
    return generate_layout(get_profile("noop"), seed=1)


@pytest.fixture(scope="module")
def trace_text(layout):
    walker = PathWalker(layout, seed=1)
    return record_to_string(walker, 50, workload="noop", seed=1)


def corrupt(text, lineno, new_line):
    """Replace one line of a recorded trace (0 = header)."""
    lines = text.splitlines()
    lines[lineno] = new_line
    return "\n".join(lines) + "\n"


class TestHeader:
    def test_malformed_header(self, layout):
        with pytest.raises(TraceError, match="not a repro trace"):
            TraceReplayer(layout, "GARBAGE HEADER\n0 1 1\n")

    def test_wrong_magic(self, layout, trace_text):
        bad = corrupt(trace_text, 0,
                      trace_text.splitlines()[0].replace(MAGIC, "OTHER-FMT"))
        with pytest.raises(TraceError, match="not a repro trace"):
            TraceReplayer(layout, bad)

    def test_version_mismatch(self, layout, trace_text):
        bad = corrupt(trace_text, 0,
                      trace_text.splitlines()[0].replace("v1", "v2"))
        with pytest.raises(TraceError, match="unsupported trace version"):
            TraceReplayer(layout, bad)

    def test_mangled_header_field(self, layout):
        line = f"{MAGIC} v1 workload=noop seed=pork blocks=4"
        with pytest.raises(TraceError, match="bad trace header"):
            TraceReplayer(layout, line + "\n0 1 1\n")

    def test_header_roundtrip(self):
        hdr = TraceHeader(workload="noop", seed=7, num_blocks=12)
        assert TraceHeader.parse(hdr.line()) == hdr

    def test_empty_trace(self, layout):
        with pytest.raises(TraceError, match="empty trace"):
            TraceReplayer(layout, "")

    def test_header_but_no_records(self, layout, trace_text):
        header_only = trace_text.splitlines()[0] + "\n"
        with pytest.raises(TraceError, match="no records"):
            TraceReplayer(layout, header_only)


class TestLayoutIdentity:
    def test_block_count_mismatch(self, trace_text):
        # replaying against a different layout must fail up front, not
        # mid-simulation on an out-of-range block id
        other = generate_layout(get_profile("tatp"), seed=1)
        with pytest.raises(TraceError, match="-block layout"):
            TraceReplayer(other, trace_text)

    def test_mismatch_error_names_both_sizes(self, layout, trace_text):
        other = generate_layout(get_profile("tatp"), seed=1)
        assert other.num_blocks != layout.num_blocks
        with pytest.raises(TraceError) as exc:
            TraceReplayer(other, trace_text)
        assert str(layout.num_blocks) in str(exc.value)
        assert str(other.num_blocks) in str(exc.value)


class TestRecords:
    def test_truncated_record_mid_stream(self, layout, trace_text):
        bad = corrupt(trace_text, 10, "7 1")  # lost the successor field
        with pytest.raises(TraceError, match="expected 3 fields"):
            TraceReplayer(layout, bad)

    def test_truncation_reports_the_line_number(self, layout, trace_text):
        bad = corrupt(trace_text, 10, "7 1")
        with pytest.raises(TraceError, match="line 11"):
            TraceReplayer(layout, bad)

    def test_non_integer_field(self, layout, trace_text):
        bad = corrupt(trace_text, 3, "7 one 9")
        with pytest.raises(TraceError, match="non-integer field"):
            TraceReplayer(layout, bad)

    def test_taken_out_of_domain(self, layout, trace_text):
        first = trace_text.splitlines()[1].split()
        bad = corrupt(trace_text, 1, f"{first[0]} 2 {first[2]}")
        with pytest.raises(TraceError, match="taken must be 0/1"):
            TraceReplayer(layout, bad)

    def test_comments_and_blanks_tolerated(self, layout, trace_text):
        lines = trace_text.splitlines()
        lines.insert(1, "# annotated by a human")
        lines.insert(5, "")
        replayer = TraceReplayer(layout, "\n".join(lines) + "\n")
        assert len(replayer) == 50


class TestVerification:
    def test_block_id_out_of_range(self, layout, trace_text):
        lines = trace_text.splitlines()
        parts = lines[1].split()
        bad = corrupt(trace_text, 1,
                      f"{layout.num_blocks + 5} {parts[1]} {parts[2]}")
        with pytest.raises(TraceError, match="out of range"):
            TraceReplayer(layout, bad)

    def test_successor_out_of_range(self, layout, trace_text):
        parts = trace_text.splitlines()[1].split()
        bad = corrupt(trace_text, 1,
                      f"{parts[0]} {parts[1]} {layout.num_blocks + 5}")
        with pytest.raises(TraceError, match="successor .* out of range"):
            TraceReplayer(layout, bad)

    def test_successor_adjacency_enforced(self, layout, trace_text):
        # point record 5's successor somewhere record 6 doesn't go
        lines = trace_text.splitlines()
        parts = lines[5].split()
        actual_next = int(lines[6].split()[0])
        wrong = (actual_next + 1) % layout.num_blocks
        bad = corrupt(trace_text, 5, f"{parts[0]} {parts[1]} {wrong}")
        with pytest.raises(TraceError,
                           match="but next record is block"):
            TraceReplayer(layout, bad)

    def test_verify_false_skips_semantic_checks(self, layout, trace_text):
        lines = trace_text.splitlines()
        parts = lines[5].split()
        actual_next = int(lines[6].split()[0])
        wrong = (actual_next + 1) % layout.num_blocks
        bad = corrupt(trace_text, 5, f"{parts[0]} {parts[1]} {wrong}")
        # verify=False is the documented escape hatch for hand-edited
        # traces; construction succeeds, caveat emptor
        replayer = TraceReplayer(layout, bad, verify=False)
        assert len(replayer) == 50


class TestExhaustion:
    def test_stop_iteration_when_not_looping(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text)
        for _ in range(len(replayer)):
            replayer.next_event()
        with pytest.raises(StopIteration, match="exhausted after 50"):
            replayer.next_event()

    def test_loop_wraps_instead(self, layout, trace_text):
        replayer = TraceReplayer(layout, trace_text, loop=True)
        for _ in range(len(replayer) * 2 + 3):
            replayer.next_event()
        assert replayer.events == len(replayer) * 2 + 3

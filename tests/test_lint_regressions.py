"""Regression gate: the concurrency rules must catch reintroductions.

Each test copies the shipped ``src/repro`` tree into ``tmp_path``,
applies a textual mutation that reverts a class of fix (dropping a pool
initializer, renaming a route string on one side of the client/server
boundary), and asserts the corresponding rule fires. This pins the
acceptance criteria of the analyzer: the exact bug classes it was built
for cannot silently come back.
"""

import re
import shutil
from pathlib import Path

from repro.analysis.engine import discover, run_rules
from repro.analysis.rules import get_rules

REPO = Path(__file__).resolve().parents[1]

#: files that construct a ProcessPoolExecutor in the shipped tree
POOL_FILES = (
    "service/server.py",
    "service/cluster.py",
    "simulator/runner.py",
)

_INITIALIZER_RE = re.compile(r",\s*initializer=pool_child_init")


def copy_tree(tmp_path):
    dest = tmp_path / "src" / "repro"
    shutil.copytree(REPO / "src" / "repro", dest)
    return dest


def lint(tree, rule_names):
    project = discover([tree], root=tree.parent.parent)
    return run_rules(project, get_rules(rule_names))


def mutate(tree, rel, pattern, replacement, count=0):
    path = tree / rel
    source = path.read_text()
    mutated, n = re.subn(pattern, replacement, source, count=count)
    assert n > 0, f"mutation pattern matched nothing in {rel}"
    path.write_text(mutated)
    return n


class TestPoolInitializerRegression:
    def test_unmutated_copy_is_clean(self, tmp_path):
        tree = copy_tree(tmp_path)
        assert lint(tree, ["pool-child-init"]) == []

    def test_every_pool_site_is_guarded(self, tmp_path):
        # strip initializer= from every construction site at once: one
        # finding per site, in the right file
        tree = copy_tree(tmp_path)
        expected = 0
        for rel in POOL_FILES:
            expected += mutate(tree, rel, _INITIALIZER_RE, "")
        findings = lint(tree, ["pool-child-init"])
        assert len(findings) == expected
        assert {f.rule for f in findings} == {"pool-child-init"}
        flagged_files = {f.path.split("/")[-1] for f in findings}
        assert flagged_files == {Path(rel).name for rel in POOL_FILES}

    def test_single_site_regression(self, tmp_path):
        # the PR-6 bug verbatim: one forgotten initializer on one site
        tree = copy_tree(tmp_path)
        mutate(tree, "service/server.py", _INITIALIZER_RE, "", count=1)
        findings = lint(tree, ["pool-child-init"])
        assert len(findings) == 1
        assert findings[0].path.endswith("service/server.py")

    def test_wrong_initializer_regression(self, tmp_path):
        tree = copy_tree(tmp_path)
        mutate(tree, "service/cluster.py",
               re.compile(r"initializer=pool_child_init"),
               "initializer=print", count=1)
        findings = lint(tree, ["pool-child-init"])
        assert len(findings) == 1
        assert "expected pool_child_init" in findings[0].message


class TestRouteDriftRegression:
    def test_unmutated_copy_is_clean(self, tmp_path):
        tree = copy_tree(tmp_path)
        assert lint(tree, ["route-conformance"]) == []

    def test_client_side_rename_fires(self, tmp_path):
        # ServiceClient starts sending POST /drain-now; the server still
        # answers POST /drain — both sides must light up
        tree = copy_tree(tmp_path)
        mutate(tree, "service/client.py",
               re.compile(re.escape('"/drain"')), '"/drain-now"')
        findings = lint(tree, ["route-conformance"])
        assert findings, "client-side route rename went undetected"
        messages = " | ".join(f.message for f in findings)
        assert "POST /drain-now" in messages
        paths = {f.path.split("/")[-1] for f in findings}
        assert "client.py" in paths

    def test_server_side_rename_fires(self, tmp_path):
        # the handler moves to POST /drainz while every client still
        # sends POST /drain
        tree = copy_tree(tmp_path)
        mutate(tree, "service/server.py",
               re.compile(re.escape('parts == ["drain"]')),
               'parts == ["drainz"]')
        findings = lint(tree, ["route-conformance"])
        assert findings, "server-side route rename went undetected"
        messages = " | ".join(f.message for f in findings)
        assert "POST /drain" in messages

    def test_worker_route_rename_fires(self, tmp_path):
        # coordinator->worker boundary: worker stops answering /execute
        tree = copy_tree(tmp_path)
        mutate(tree, "service/cluster.py",
               re.compile(re.escape('parts == ["execute"]')),
               'parts == ["run"]')
        findings = lint(tree, ["route-conformance"])
        assert findings, "worker route rename went undetected"
        messages = " | ".join(f.message for f in findings)
        assert "/execute" in messages or "/run" in messages


class TestBlockingCallRegression:
    def test_unmutated_copy_is_clean(self, tmp_path):
        tree = copy_tree(tmp_path)
        assert lint(tree, ["async-blocking-call"]) == []

    def test_reverting_executor_offload_fires(self, tmp_path):
        # put the blocking store.close() back on the event loop
        tree = copy_tree(tmp_path)
        mutate(tree, "service/server.py",
               re.compile(
                   r"await loop\.run_in_executor\(None, self\.store\.close\)"),
               "self.store.close()")
        findings = lint(tree, ["async-blocking-call"])
        assert len(findings) == 1
        assert "ResultStore.close" in findings[0].message

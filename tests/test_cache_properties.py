"""Property-based tests (hypothesis) for the on-disk result cache.

Key stability: the run key is a pure function of its inputs, and every
field that determines a run's outcome (benchmark, policy, instruction
budget, warmup, seed, machine config) perturbs it. Round-trip:
``store``/``load`` preserves ``SimulationStats`` exactly.
"""

import dataclasses
import os
import tempfile
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import cache as result_cache
from repro.simulator.config import MachineConfig
from repro.simulator.policies import POLICIES, get_policy
from repro.simulator.stats import SimulationStats
from repro.workloads.profiles import BENCHMARK_NAMES

benchmarks = st.sampled_from(sorted(BENCHMARK_NAMES))
policies = st.sampled_from(sorted(POLICIES))
budgets = st.integers(min_value=1, max_value=10**8)
warmups = st.integers(min_value=0, max_value=10**7)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
counters = st.integers(min_value=0, max_value=2**40)
metric_floats = st.floats(allow_nan=False, allow_infinity=False,
                          width=32)


@contextmanager
def _isolated_cache():
    """Point the cache at a throwaway dir (hypothesis-safe: no fixtures)."""
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR",
                                            "REPRO_NO_CACHE")}
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        os.environ.pop("REPRO_NO_CACHE", None)
        try:
            yield
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value


class TestRunKeyProperties:
    @given(benchmarks, policies, budgets, warmups, seeds)
    def test_same_inputs_same_key(self, bench, policy, instr, warm, seed):
        spec = get_policy(policy)
        a = result_cache.run_key(bench, spec, instr, warm, seed, None)
        b = result_cache.run_key(bench, spec, instr, warm, seed, None)
        assert a == b

    @given(benchmarks, policies, budgets, warmups, seeds,
           st.integers(min_value=1, max_value=10**6))
    def test_instructions_perturb_key(self, bench, policy, instr, warm,
                                      seed, delta):
        spec = get_policy(policy)
        a = result_cache.run_key(bench, spec, instr, warm, seed, None)
        b = result_cache.run_key(bench, spec, instr + delta, warm, seed,
                                 None)
        assert a != b

    @given(benchmarks, policies, budgets, warmups, seeds,
           st.integers(min_value=1, max_value=10**6))
    def test_warmup_perturbs_key(self, bench, policy, instr, warm, seed,
                                 delta):
        spec = get_policy(policy)
        a = result_cache.run_key(bench, spec, instr, warm, seed, None)
        b = result_cache.run_key(bench, spec, instr, warm + delta, seed,
                                 None)
        assert a != b

    @given(benchmarks, policies, budgets, warmups, seeds,
           st.integers(min_value=1, max_value=10**6))
    def test_seed_perturbs_key(self, bench, policy, instr, warm, seed,
                               delta):
        spec = get_policy(policy)
        a = result_cache.run_key(bench, spec, instr, warm, seed, None)
        b = result_cache.run_key(bench, spec, instr, warm, seed + delta,
                                 None)
        assert a != b

    @given(benchmarks, st.permutations(sorted(POLICIES))
           .map(lambda p: p[:2]), budgets, warmups, seeds)
    def test_policy_perturbs_key(self, bench, two_policies, instr, warm,
                                 seed):
        first, second = two_policies
        a = result_cache.run_key(bench, get_policy(first), instr, warm,
                                 seed, None)
        b = result_cache.run_key(bench, get_policy(second), instr, warm,
                                 seed, None)
        assert a != b

    @given(st.permutations(sorted(BENCHMARK_NAMES)).map(lambda b: b[:2]),
           policies, budgets, warmups, seeds)
    def test_benchmark_perturbs_key(self, two_benches, policy, instr,
                                    warm, seed):
        first, second = two_benches
        spec = get_policy(policy)
        a = result_cache.run_key(first, spec, instr, warm, seed, None)
        b = result_cache.run_key(second, spec, instr, warm, seed, None)
        assert a != b

    @given(benchmarks, policies, budgets, warmups, seeds,
           st.sampled_from([1024, 2048, 4096, 65536]))
    def test_config_perturbs_key(self, bench, policy, instr, warm, seed,
                                 btb_entries):
        spec = get_policy(policy)
        a = result_cache.run_key(bench, spec, instr, warm, seed, None)
        b = result_cache.run_key(bench, spec, instr, warm, seed,
                                 MachineConfig(btb_entries=btb_entries))
        assert (a != b) == (btb_entries != MachineConfig().btb_entries)


_COUNTER_FIELDS = [f.name for f in dataclasses.fields(SimulationStats)
                   if f.name != "extra"]


class TestStoreLoadRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.sampled_from(_COUNTER_FIELDS), counters,
                           min_size=1),
           st.dictionaries(st.text(st.characters(min_codepoint=32,
                                                 max_codepoint=126),
                                   min_size=1, max_size=12),
                           metric_floats, max_size=4))
    def test_roundtrip_preserves_stats_exactly(self, fields, extra):
        stats = SimulationStats()
        for name, value in fields.items():
            setattr(stats, name, value)
        stats.extra = dict(extra)
        with _isolated_cache():
            result_cache.store("prop-key", stats)
            loaded = result_cache.load("prop-key")
        assert loaded is not None
        assert loaded.to_dict() == stats.to_dict()
        for name in _COUNTER_FIELDS:
            assert getattr(loaded, name) == getattr(stats, name)
        assert loaded.extra == stats.extra
        assert loaded.ipc == stats.ipc

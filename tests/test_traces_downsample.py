"""Deterministic, phase-preserving downsampling (repro.traces.downsample).

The kept stream is a pure function of ``(events, budget, window, seed)``;
the blob digest over the canonical fixture below is **golden-pinned** —
if an algorithm change moves it, that is a schema event and the pin must
be bumped consciously, never silently.
"""

from __future__ import annotations

import pytest

from repro.traces.downsample import (
    DEFAULT_BUDGET,
    MAX_BLOCK_INSTRUCTIONS,
    downsample_events,
    estimate_instructions,
)
from repro.traces.ingest import ingest_events
from repro.traces.schema import BlockEvent, TraceIngestError

#: ingest digest of make_phased_events() under default parameters
GOLDEN_DIGEST = "3ce0adfd2b1a143a964cbd7fd48e0e36a1680056"


def make_phased_events():
    """Three phases of 40 blocks each, looping 120 times per phase."""
    events = []
    for phase in range(3):
        base = 0x10000 * (phase + 1)
        keys = [(base + i * 64, base + i * 64 + 32) for i in range(40)]
        for _rep in range(120):
            for (s, e) in keys:
                events.append(BlockEvent(start=s, end=e, size=4,
                                         taken=True, target=0,
                                         kind="direct"))
    return events


def block(start=0x100, span=32):
    return BlockEvent(start=start, end=start + span, size=4,
                      taken=True, target=0, kind="direct")


class TestEstimate:
    def test_span_to_instructions(self):
        assert estimate_instructions(block(span=32), 4) == 9
        assert estimate_instructions(block(span=0), 4) == 1

    def test_absurd_span_clamped(self):
        # a cross-library jump must not eat the whole budget
        assert (estimate_instructions(block(span=1 << 30), 4)
                == MAX_BLOCK_INSTRUCTIONS)


class TestDownsample:
    def test_under_budget_is_identity(self):
        events = [block(start=0x100 + i * 64) for i in range(10)]
        kept, report = downsample_events(events, 4)
        assert kept == events
        assert not report.sampled

    def test_deterministic_for_fixed_seed(self):
        events = make_phased_events()
        kept1, _ = downsample_events(events, 4)
        kept2, _ = downsample_events(events, 4)
        assert kept1 == kept2

    def test_seed_changes_the_fill_selection(self):
        events = make_phased_events()
        _, d0, _ = ingest_events(events, 4, seed=0)
        _, d1, _ = ingest_events(events, 4, seed=1)
        assert d0 != d1

    def test_golden_digest_pinned(self):
        payload, digest, report = ingest_events(make_phased_events(), 4)
        assert digest == GOLDEN_DIGEST
        assert report.sampled
        assert report.instructions_kept <= DEFAULT_BUDGET

    def test_all_phases_survive(self):
        # head-truncation would keep only phase 1; the sampler must keep
        # novelty spikes from every phase
        kept, report = downsample_events(make_phased_events(), 4)
        assert {ev.start >> 16 for ev in kept} == {1, 2, 3}
        assert report.phase_windows >= 3

    def test_kept_stream_stays_chronological(self):
        events = make_phased_events()
        kept, _ = downsample_events(events, 4)
        pos = {id(ev): i for i, ev in enumerate(events)}
        indices = [pos[id(ev)] for ev in kept]
        assert indices == sorted(indices)

    def test_budget_respected(self):
        kept, report = downsample_events(make_phased_events(), 4,
                                         budget=30_000)
        assert report.instructions_kept <= 30_000
        assert report.events_kept == len(kept)

    def test_budget_below_entry_window(self):
        with pytest.raises(TraceIngestError) as exc:
            downsample_events(make_phased_events(), 4, budget=100)
        assert exc.value.category == "budget-too-small"

    def test_nonpositive_parameters(self):
        with pytest.raises(TraceIngestError):
            downsample_events([block()], 4, budget=0)
        with pytest.raises(TraceIngestError):
            downsample_events([block()], 4, window=0)

"""Tests for the PDIP table (geometry, masks, storage arithmetic)."""

import pytest

from repro.core.pdip_table import PDIPTable, PDIP_TABLE_SETS


class TestStorageArithmetic:
    """Section 5.4: 512 sets x 8 ways x 87 bits = 43.5 KB exactly."""

    def test_bits_per_way(self):
        assert PDIPTable(assoc=8).bits_per_way == 87

    def test_paper_443_kb(self):
        table = PDIPTable(assoc=8)
        assert table.storage_bits == 356352
        assert table.storage_kb == pytest.approx(43.5)

    def test_size_ladder(self):
        assert PDIPTable(assoc=2).storage_kb == pytest.approx(10.875)
        assert PDIPTable(assoc=4).storage_kb == pytest.approx(21.75)
        assert PDIPTable(assoc=16).storage_kb == pytest.approx(87.0)

    def test_for_budget(self):
        assert PDIPTable.for_budget_kb(11).assoc == 2
        assert PDIPTable.for_budget_kb(44).assoc == 8
        assert PDIPTable.for_budget_kb(87).assoc == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PDIPTable(assoc=0)


class TestInsertLookup:
    def test_miss_on_empty(self):
        assert PDIPTable().lookup(100) == []

    def test_insert_then_hit(self):
        table = PDIPTable()
        table.insert(100, 900)
        assert [line for line, _ in table.lookup(100)] == [900]

    def test_duplicate_insert_idempotent(self):
        table = PDIPTable()
        table.insert(100, 900)
        table.insert(100, 900)
        assert len(table.lookup(100)) == 1

    def test_two_targets(self):
        table = PDIPTable()
        table.insert(100, 900)
        table.insert(100, 2000)
        assert {line for line, _ in table.lookup(100)} == {900, 2000}

    def test_third_target_displaces_oldest(self):
        table = PDIPTable(targets_per_entry=2, mask_bits=0)
        table.insert(100, 900)
        table.insert(100, 2000)
        table.insert(100, 3000)
        assert {line for line, _ in table.lookup(100)} == {2000, 3000}

    def test_trigger_type_carried(self):
        table = PDIPTable()
        table.insert(100, 900, trigger_type="last_taken")
        assert table.lookup(100) == [(900, "last_taken")]


class TestMaskCompaction:
    """Section 5.1: following blocks fold into the 4-bit mask."""

    def test_next_block_merges_into_mask(self):
        table = PDIPTable()
        table.insert(100, 900)
        table.insert(100, 901)
        lines = [line for line, _ in table.lookup(100)]
        assert lines == [900, 901]
        assert table.mask_merges == 1
        assert table.target_inserts == 1  # second insert was a mask merge

    def test_mask_reach_is_four_blocks(self):
        table = PDIPTable()
        table.insert(100, 900)
        table.insert(100, 904)  # delta 4: last mask bit
        assert {l for l, _ in table.lookup(100)} == {900, 904}
        table2 = PDIPTable()
        table2.insert(100, 900)
        table2.insert(100, 905)  # delta 5: beyond the mask
        assert table2.mask_merges == 0
        assert {l for l, _ in table2.lookup(100)} == {900, 905}

    def test_paper_example(self):
        """Figure 8: mask bits 3 and 4 prefetch r, r+3, r+4."""
        table = PDIPTable()
        table.insert(7, 500)
        table.insert(7, 503)
        table.insert(7, 504)
        assert [l for l, _ in table.lookup(7)] == [500, 503, 504]


class TestSetAssociativity:
    def test_conflicting_triggers_evict_lru(self):
        table = PDIPTable(assoc=2, num_sets=PDIP_TABLE_SETS)
        base = 100
        triggers = [base + i * PDIP_TABLE_SETS for i in range(3)]
        table.insert(triggers[0], 900)
        table.insert(triggers[1], 901)
        table.lookup(triggers[0])          # refresh LRU
        table.insert(triggers[2], 902)     # evicts triggers[1]
        assert table.lookup(triggers[0])
        assert not table.lookup(triggers[1])
        assert table.lookup(triggers[2])
        assert table.evictions == 1

    def test_occupancy_bounded(self):
        table = PDIPTable(assoc=2, num_sets=8)
        for i in range(200):
            table.insert(i, 10_000 + i)
        assert table.occupancy() <= 16

    def test_tag_disambiguates_same_set(self):
        table = PDIPTable(assoc=4)
        a, b = 100, 100 + PDIP_TABLE_SETS
        table.insert(a, 900)
        table.insert(b, 901)
        assert [l for l, _ in table.lookup(a)] == [900]
        assert [l for l, _ in table.lookup(b)] == [901]

    def test_hit_and_lookup_counters(self):
        table = PDIPTable()
        table.insert(100, 900)
        table.lookup(100)
        table.lookup(999)
        assert table.lookups == 2
        assert table.hits == 1

"""Focused behavioural tests of the machine's corner cases."""

import pytest

from repro.simulator.config import MachineConfig
from repro.simulator.machine import Machine
from repro.simulator.policies import build_machine, get_policy
from repro.workloads.generator import generate_layout
from repro.workloads.profiles import WorkloadProfile

LONG_BLOCKS = WorkloadProfile(
    name="long-blocks", num_functions=60, num_handlers=8, num_leaves=10,
    call_depth=3, mean_instructions_per_block=20,
    max_instructions_per_block=64)

SMALL = WorkloadProfile(name="behav-test", num_functions=60, num_handlers=8,
                        num_leaves=10, call_depth=3)


class TestPartialDecode:
    """Blocks longer than the decode width must decode over several
    cycles (verilator's BOLTed long blocks)."""

    def test_long_block_workload_runs(self):
        layout = generate_layout(LONG_BLOCKS, seed=6)
        machine = Machine(layout, LONG_BLOCKS, seed=6)
        stats = machine.run(5000, warmup=500)
        assert stats.instructions >= 5000

    def test_decode_width_bounds_retiring_slots(self):
        layout = generate_layout(LONG_BLOCKS, seed=6)
        machine = Machine(layout, LONG_BLOCKS, seed=6)
        stats = machine.run(5000, warmup=500)
        assert stats.slots_retiring <= stats.slots_total

    def test_narrow_decode_hurts(self):
        layout = generate_layout(LONG_BLOCKS, seed=6)
        wide = Machine(layout, LONG_BLOCKS,
                       config=MachineConfig(decode_width=12), seed=6)
        narrow = Machine(layout, LONG_BLOCKS,
                         config=MachineConfig(decode_width=2), seed=6)
        assert narrow.run(4000, warmup=500).ipc < wide.run(4000, warmup=500).ipc


class TestMSHRDeferral:
    """FDIP fills that cannot get an MSHR defer to demand time instead of
    stalling the FTQ."""

    def test_tiny_mshr_pool_still_makes_progress(self):
        from repro.memory.hierarchy import HierarchyConfig

        layout = generate_layout(SMALL, seed=6)
        cfg = MachineConfig(hierarchy=HierarchyConfig(l1i_mshrs=2))
        machine = Machine(layout, SMALL, config=cfg, seed=6)
        stats = machine.run(4000, warmup=500)
        assert stats.instructions >= 4000

    def test_tiny_mshr_pool_costs_ipc(self):
        from repro.memory.hierarchy import HierarchyConfig

        layout = generate_layout(SMALL, seed=6)
        few = Machine(layout, SMALL,
                      config=MachineConfig(hierarchy=HierarchyConfig(
                          l1i_mshrs=1)), seed=6)
        many = Machine(layout, SMALL,
                       config=MachineConfig(hierarchy=HierarchyConfig(
                           l1i_mshrs=16)), seed=6)
        assert few.run(5000, warmup=500).ipc <= many.run(5000, warmup=500).ipc


class TestWrongPath:
    def test_wrong_path_budget_respected(self):
        layout = generate_layout(SMALL, seed=6)
        machine = Machine(layout, SMALL,
                          config=MachineConfig(wrongpath_max_blocks=1),
                          seed=6)
        stats = machine.run(4000, warmup=500)
        # with a 1-block budget per resteer, wrong-path blocks cannot
        # exceed resteer count
        assert stats.wrong_path_blocks <= stats.resteers + 1

    def test_wrong_path_pollutes_l1i(self):
        """Wrong-path fetch touches the cache (it can help or hurt, but
        it must be visible in access counts)."""
        layout = generate_layout(SMALL, seed=6)
        none = Machine(layout, SMALL,
                       config=MachineConfig(wrongpath_max_blocks=0), seed=6)
        lots = Machine(layout, SMALL,
                       config=MachineConfig(wrongpath_max_blocks=64), seed=6)
        stats_none = none.run(5000, warmup=500)
        stats_lots = lots.run(5000, warmup=500)
        assert stats_lots.wrong_path_blocks > stats_none.wrong_path_blocks
        assert stats_none.wrong_path_blocks == 0


class TestResteerLatencies:
    def test_predecode_cheaper_than_execute(self):
        """BTB-miss resteers resolve at pre-decode; making that as slow
        as execute resolution must cost IPC."""
        layout = generate_layout(SMALL, seed=6)
        fast = Machine(layout, SMALL,
                       config=MachineConfig(predecode_resteer_latency=3),
                       seed=6)
        slow = Machine(layout, SMALL,
                       config=MachineConfig(predecode_resteer_latency=18),
                       seed=6)
        assert fast.run(6000, warmup=800).ipc > slow.run(6000, warmup=800).ipc

    def test_redirect_penalty_costs(self):
        layout = generate_layout(SMALL, seed=6)
        fast = Machine(layout, SMALL,
                       config=MachineConfig(redirect_penalty=1), seed=6)
        slow = Machine(layout, SMALL,
                       config=MachineConfig(redirect_penalty=10), seed=6)
        assert fast.run(6000, warmup=800).ipc > slow.run(6000, warmup=800).ipc


class TestPrefetchQueuePressure:
    def test_small_pq_drops_requests(self):
        layout = generate_layout(
            SMALL.scaled(name="pq-test"), seed=6)
        profile = SMALL.scaled(name="pq-test")
        machine = build_machine(layout, profile, get_policy("eip_46"),
                                config=MachineConfig(pq_capacity=2), seed=6)
        machine.run(6000, warmup=800)
        assert machine.pq.dropped_full >= 0  # bounded structure exercised
        assert len(machine.pq) <= 2


class TestIAGRunAhead:
    def test_faster_iag_fills_ftq_deeper(self):
        layout = generate_layout(SMALL, seed=6)
        from repro.simulator.probe import TimelineProbe

        slow = Machine(layout, SMALL,
                       config=MachineConfig(iag_blocks_per_cycle=1), seed=6)
        slow.probe = slow_probe = TimelineProbe(sample_every=5)
        slow.run(4000, warmup=0)
        fast = Machine(layout, SMALL,
                       config=MachineConfig(iag_blocks_per_cycle=8), seed=6)
        fast.probe = fast_probe = TimelineProbe(sample_every=5)
        fast.run(4000, warmup=0)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(fast_probe.ftq_occupancy) > mean(slow_probe.ftq_occupancy)

"""Tests for the related-work extension prefetchers (next-line, RDIP)."""

import pytest

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetchers.next_line import NextLineConfig, NextLinePrefetcher
from repro.prefetchers.rdip import RDIPConfig, RDIPPrefetcher
from repro.workloads.layout import BasicBlock, BranchKind


def make_pq():
    hierarchy = MemoryHierarchy(config=HierarchyConfig())
    return PrefetchQueue(hierarchy), hierarchy


def entry(lines, kind=BranchKind.FALLTHROUGH, fallthrough=1, missed=None):
    block = BasicBlock(bid=0, addr=lines[0] * 64, num_instructions=4,
                       kind=kind, fallthrough=fallthrough)
    e = FTQEntry(block=block, lines=list(lines), enqueue_cycle=0)
    if missed:
        e.missed_lines = list(missed)
    return e


class TestNextLine:
    def test_prefetches_following_lines(self):
        pq, _ = make_pq()
        nl = NextLinePrefetcher(pq, NextLineConfig(degree=2))
        nl.on_ftq_enqueue(entry([100]), cycle=0)
        assert nl.prefetch_requests == 2
        assert len(pq) == 2

    def test_degree_respected(self):
        pq, _ = make_pq()
        nl = NextLinePrefetcher(pq, NextLineConfig(degree=4))
        nl.on_ftq_enqueue(entry([100]), cycle=0)
        assert nl.prefetch_requests == 4

    def test_worth_training_suppresses_nonsequential(self):
        pq, _ = make_pq()
        cfg = NextLineConfig(degree=1, worth_threshold=1)
        nl = NextLinePrefetcher(pq, cfg)
        # line 100 is always followed by a jump to 500 (non-sequential):
        # its worth counter goes negative, so no prefetch fires for it
        for _ in range(5):
            nl.on_ftq_enqueue(entry([100]), cycle=0)
            nl.on_ftq_enqueue(entry([500]), cycle=0)
        before = nl.prefetch_requests
        nl.on_ftq_enqueue(entry([100]), cycle=0)
        assert nl.prefetch_requests == before

    def test_worth_training_rewards_sequential(self):
        pq, _ = make_pq()
        cfg = NextLineConfig(degree=1, worth_threshold=1)
        nl = NextLinePrefetcher(pq, cfg)
        for _ in range(5):
            nl.on_ftq_enqueue(entry([100, 101, 102]), cycle=0)
        before = nl.prefetch_requests
        nl.on_ftq_enqueue(entry([100]), cycle=0)
        assert nl.prefetch_requests > before

    def test_storage_small(self):
        pq, _ = make_pq()
        assert NextLinePrefetcher(pq).storage_kb < 4.0


class TestRDIP:
    def _call(self, pc_line, target_line):
        block = BasicBlock(bid=1, addr=pc_line * 64, num_instructions=2,
                           kind=BranchKind.CALL, taken_target=2,
                           fallthrough=3)
        return FTQEntry(block=block, lines=[pc_line], enqueue_cycle=0)

    def _ret(self, pc_line):
        block = BasicBlock(bid=2, addr=pc_line * 64, num_instructions=2,
                           kind=BranchKind.RETURN)
        return FTQEntry(block=block, lines=[pc_line], enqueue_cycle=0)

    def test_signature_changes_on_call(self):
        pq, _ = make_pq()
        rdip = RDIPPrefetcher(pq)
        rdip.on_ftq_enqueue(self._call(10, 20), cycle=0)
        assert rdip.signature_switches == 1
        rdip.on_ftq_enqueue(self._ret(20), cycle=1)
        assert rdip.signature_switches == 2

    def test_plain_block_does_not_switch(self):
        pq, _ = make_pq()
        rdip = RDIPPrefetcher(pq)
        rdip.on_ftq_enqueue(entry([50]), cycle=0)
        assert rdip.signature_switches == 0

    def test_trains_and_prefetches_on_context_reentry(self):
        pq, _ = make_pq()
        rdip = RDIPPrefetcher(pq)
        # retire path: enter context via a call, then miss line 900
        rdip.on_retire(self._call(10, 20), cycle=0)
        rdip.on_retire(entry([20], missed=[900]), cycle=1)
        # leave and re-enter the same context speculatively
        rdip.on_ftq_enqueue(self._call(10, 20), cycle=10)
        assert rdip.prefetch_requests >= 1
        assert len(pq) >= 1

    def test_different_context_different_lines(self):
        pq, _ = make_pq()
        rdip = RDIPPrefetcher(pq)
        rdip.on_retire(self._call(10, 20), cycle=0)
        rdip.on_retire(entry([20], missed=[900]), cycle=1)
        # a different caller context must not fetch context-10's lines
        rdip.on_ftq_enqueue(self._call(77, 20), cycle=10)
        assert 900 not in list(pq._q)

    def test_lines_per_signature_capped(self):
        pq, _ = make_pq()
        cfg = RDIPConfig(lines_per_signature=2)
        rdip = RDIPPrefetcher(pq, cfg)
        rdip.on_retire(self._call(10, 20), cycle=0)
        for line in (900, 901, 902):
            rdip.on_retire(entry([20], missed=[line]), cycle=1)
        sig = rdip._retire_signature
        assert len(rdip._lookup(sig)) == 2

    def test_storage_reported(self):
        pq, _ = make_pq()
        assert RDIPPrefetcher(pq).storage_kb > 0


class TestEndToEnd:
    def test_extension_policies_run(self):
        from repro.simulator.runner import run_benchmark
        for policy in ("next_line", "rdip", "pdip_44_path"):
            stats = run_benchmark("noop", policy, instructions=4000,
                                  warmup=800, use_cache=False)
            assert stats.instructions >= 4000

    def test_next_line_issues_prefetches_in_machine(self):
        from repro.simulator.runner import run_benchmark
        stats = run_benchmark("cassandra", "next_line", instructions=8000,
                              warmup=2000, use_cache=False)
        assert stats.prefetches_issued > 0

"""Focused tests for EIP's latency-based source selection."""

import pytest

from repro.frontend.ftq import FTQEntry
from repro.frontend.prefetch_queue import PrefetchQueue
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetchers.eip import EIPConfig, EIPPrefetcher
from repro.workloads.layout import BasicBlock


def make_eip(**cfg):
    hierarchy = MemoryHierarchy(config=HierarchyConfig())
    pq = PrefetchQueue(hierarchy)
    return EIPPrefetcher(pq, config=EIPConfig(**cfg))


def committed(eip, line, cycle):
    block = BasicBlock(bid=0, addr=line * 64, num_instructions=4)
    entry = FTQEntry(block=block, lines=[line], enqueue_cycle=cycle)
    eip.on_retire(entry, cycle)


class TestFindSource:
    def test_picks_entry_with_enough_lead(self):
        eip = make_eip()
        for i, (line, cycle) in enumerate([(10, 0), (11, 20), (12, 40)]):
            committed(eip, line, cycle)
        # a miss needing 25 cycles of lead, requested at cycle 40:
        # want_cycle = 15 -> most recent history entry fetched <= 15 is 10
        assert eip._find_source(15) == 10

    def test_exact_boundary(self):
        eip = make_eip()
        committed(eip, 10, 0)
        committed(eip, 11, 20)
        assert eip._find_source(20) == 11

    def test_nothing_old_enough_falls_back_to_oldest(self):
        eip = make_eip()
        committed(eip, 10, 100)
        committed(eip, 11, 120)
        assert eip._find_source(50) == 10

    def test_empty_history(self):
        eip = make_eip()
        assert eip._find_source(10) is None


class TestEntanglementSemantics:
    def test_longer_latency_entangles_further_back(self):
        """The defining EIP property: a slower miss is entangled with an
        earlier (more lead time) source."""
        eip = make_eip()
        for i in range(6):
            committed(eip, 10 + i, i * 20)

        def entangle_for_latency(latency, dst):
            block = BasicBlock(bid=0, addr=dst * 64, num_instructions=4)
            entry = FTQEntry(block=block, lines=[dst], enqueue_cycle=120)
            entry.missed_lines = [dst]
            entry.line_ready = {dst: 120 + latency}
            eip.on_retire(entry, 130)

        entangle_for_latency(30, 500)   # want_cycle 90 -> source 14
        entangle_for_latency(110, 600)  # want_cycle 10 -> source 10
        assert 500 in eip._lookup(14)
        assert 600 in eip._lookup(10)

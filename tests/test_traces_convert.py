"""Format converters and sniffing (repro.traces.convert)."""

from __future__ import annotations

import gzip

import pytest

from repro.traces.convert import (
    CHAMPSIM_KINDS,
    load_records,
    read_champsim,
    read_csv,
    sniff_format,
)
from repro.traces.schema import (
    RECORD_KINDS,
    TraceFormatError,
    TraceRecordError,
    TraceSchemaError,
)

CHAMPSIM = [
    "0x1000 0x2000 1 BRANCH_DIRECT_CALL",
    "0x2008 0 0 BRANCH_CONDITIONAL",
    "0x2010 0x1004 1 BRANCH_RETURN",
]

CSV = [
    "pc,target,taken",
    "0x1000,0x2000,1",
    "0x2008,,0",
    "0x2010,0x1004,1",
]


class TestChampsim:
    def test_parse(self):
        meta, records = read_champsim(CHAMPSIM)
        assert meta["converted_from"] == "champsim"
        assert [r.kind for r in records] == ["call", "cond", "return"]
        assert records[0].pc == 0x1000 and records[0].target == 0x2000
        assert not records[1].taken and records[1].target == 0

    def test_kind_map_targets_schema_kinds(self):
        assert set(CHAMPSIM_KINDS.values()) <= set(RECORD_KINDS)

    def test_unknown_branch_type(self):
        with pytest.raises(TraceRecordError) as exc:
            read_champsim(["0x1000 0x2000 1 BRANCH_SIDEWAYS"])
        assert exc.value.category == "bad-field-value"
        assert exc.value.lineno == 1

    def test_wrong_field_count(self):
        with pytest.raises(TraceRecordError) as exc:
            read_champsim(["0x1000 0x2000 1"])
        assert exc.value.category == "malformed-record"

    def test_taken_with_zero_target(self):
        with pytest.raises(TraceRecordError) as exc:
            read_champsim(["0x1000 0 1 BRANCH_DIRECT_JUMP"])
        assert exc.value.category == "missing-target"

    def test_no_records(self):
        with pytest.raises(TraceSchemaError) as exc:
            read_champsim(["# only comments"])
        assert exc.value.category == "empty-trace"


class TestCsv:
    def test_parse_with_header_row(self):
        meta, records = read_csv(CSV)
        assert meta["converted_from"] == "csv"
        assert len(records) == 3
        # csv carries no kind information
        assert {r.kind for r in records} == {"unknown"}

    def test_parse_without_header_row(self):
        _, records = read_csv(CSV[1:])
        assert len(records) == 3

    def test_bad_taken(self):
        with pytest.raises(TraceRecordError) as exc:
            read_csv(["0x1000,0x2000,yes"])
        assert exc.value.category == "bad-field-value"

    def test_bad_address(self):
        with pytest.raises(TraceRecordError) as exc:
            read_csv(["pork,0x2000,1"])
        assert exc.value.category == "bad-field-type"


class TestSniffAndLoad:
    def test_sniff(self):
        assert sniff_format('{"schema": "repro-xtrace"}') == "jsonl"
        assert sniff_format("0x1000,0x2000,1") == "csv"
        assert sniff_format("0x1000 0x2000 1 BRANCH_RETURN") == "champsim"

    def test_load_auto_champsim(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text("\n".join(CHAMPSIM) + "\n")
        meta, records = load_records(str(path))
        assert meta["format"] == "champsim"
        assert len(records) == 3

    def test_load_gzipped_by_magic_not_suffix(self, tmp_path):
        path = tmp_path / "t.txt"  # deliberately no .gz suffix
        with gzip.open(path, "wt") as fh:
            fh.write("\n".join(CSV) + "\n")
        meta, records = load_records(str(path), fmt="csv")
        assert len(records) == 3

    def test_explicit_format_overrides_sniffing(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("\n".join(CSV) + "\n")
        with pytest.raises(TraceRecordError):
            # forcing champsim on csv rows must fail loudly, not guess
            load_records(str(path), fmt="champsim")

    def test_unknown_format_name(self, tmp_path):
        path = tmp_path / "t"
        path.write_text("x\n")
        with pytest.raises(TraceFormatError):
            load_records(str(path), fmt="etrace")

    def test_binary_garbage_is_not_a_trace(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"\x00\xff\xfe\x01" * 64)
        with pytest.raises(TraceFormatError) as exc:
            load_records(str(path))
        assert exc.value.category == "not-a-trace"

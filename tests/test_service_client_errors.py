"""Error-path tests for :class:`ServiceClient` against a hostile server.

A scripted raw-TCP server answers each connection with exactly the
bytes the test chose — valid backpressure responses, truncated
payloads, non-HTTP garbage — pinning the client's error taxonomy:

* 429 queue-full is retried per ``backpressure_retries`` (sleeping the
  server-suggested, capped ``retry_after_s``) and surfaces as
  :class:`ServiceError` with ``status == 429`` once the budget is out;
* a connection that cannot be opened stays ``OSError`` — the caller
  can distinguish "service down" from "service unhappy";
* a response the client cannot parse at all (garbage status line,
  body cut short mid-stream) is ``ServiceError`` with ``status == 0``;
* an HTTP-valid response whose body is not JSON is ``ServiceError``
  carrying the real HTTP status and a body excerpt.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError

CELL = dict(benchmark="noop", policy="baseline", instructions=2000,
            warmup=300)


def http_bytes(status, payload, reason="OK"):
    body = json.dumps(payload).encode("utf-8")
    head = ("HTTP/1.1 %d %s\r\nContent-Type: application/json\r\n"
            "Content-Length: %d\r\nConnection: close\r\n\r\n"
            % (status, reason, len(body)))
    return head.encode("latin-1") + body


class ScriptedServer:
    """Answers the i-th connection with ``responses[i]``, verbatim."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests = []
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(len(self.responses))
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for blob in self.responses:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            conn.settimeout(10)
            try:
                self.requests.append(self._read_request(conn))
                conn.sendall(blob)
            except OSError:
                pass
            finally:
                conn.close()

    @staticmethod
    def _read_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return data
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(rest) < length:
            rest += conn.recv(4096)
        return head + b"\r\n\r\n" + rest

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5)


@pytest.fixture
def scripted():
    servers = []

    def make(responses):
        server = ScriptedServer(responses)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


JOB = {"job": {"id": "j1", "state": "queued"}}
FULL = {"error": "queue full", "retry_after_s": 0.05}


class TestBackpressureRetry:
    def test_429_is_retried_then_succeeds(self, scripted):
        server = scripted([http_bytes(429, FULL, "Too Many Requests"),
                           http_bytes(202, JOB, "Accepted")])
        client = ServiceClient(port=server.port, backpressure_retries=2)
        t0 = time.monotonic()
        job = client.submit(**CELL)
        assert job["id"] == "j1"
        assert time.monotonic() - t0 >= 0.05   # slept retry_after_s
        assert len(server.requests) == 2

    def test_429_budget_exhausted_raises(self, scripted):
        server = scripted([http_bytes(429, FULL, "Too Many Requests")] * 2)
        client = ServiceClient(port=server.port)
        with pytest.raises(ServiceError) as err:
            client.submit(backpressure_retries=1, **CELL)
        assert err.value.status == 429
        assert len(server.requests) == 2

    def test_no_budget_fails_fast(self, scripted):
        server = scripted([http_bytes(429, FULL, "Too Many Requests")])
        client = ServiceClient(port=server.port)
        with pytest.raises(ServiceError) as err:
            client.submit(**CELL)
        assert err.value.status == 429
        assert len(server.requests) == 1

    def test_retry_after_is_capped(self, scripted):
        absurd = {"error": "queue full", "retry_after_s": 3600.0}
        server = scripted([http_bytes(429, absurd, "Too Many Requests"),
                           http_bytes(202, JOB, "Accepted")])
        client = ServiceClient(port=server.port, backpressure_retries=1)
        client.MAX_RETRY_AFTER_S = 0.05   # instance-level cap override
        t0 = time.monotonic()
        assert client.submit(**CELL)["id"] == "j1"
        assert time.monotonic() - t0 < 5.0   # not the suggested hour


class TestTransportErrors:
    def test_connection_refused_is_oserror(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()   # nothing listens here now
        client = ServiceClient(port=port, timeout=2.0)
        with pytest.raises(OSError):
            client.health()

    def test_truncated_body_is_status_zero(self, scripted):
        blob = (b"HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n"
                b'{"job": {"id"')
        server = scripted([blob])
        client = ServiceClient(port=server.port, timeout=5.0)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0
        assert "malformed response" in str(err.value)

    def test_garbage_status_line_is_status_zero(self, scripted):
        server = scripted([b"NOT HTTP AT ALL\r\n\r\nwhatever"])
        client = ServiceClient(port=server.port, timeout=5.0)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0

    def test_non_json_body_keeps_http_status(self, scripted):
        body = b"<html>Internal Server Error</html>"
        blob = (b"HTTP/1.1 500 Internal Server Error\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        server = scripted([blob])
        client = ServiceClient(port=server.port, timeout=5.0)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 500
        assert "Internal Server Error" in err.value.payload["body"]

"""Layout synthesis from observed block events (repro.traces.synthesize)."""

from __future__ import annotations

import pytest

from repro.traces.schema import BranchRecord, derive_block_events
from repro.traces.synthesize import TraceProfile, synthesize
from repro.workloads.layout import BranchKind
from repro.workloads.profiles import WorkloadProfile


def records_loop():
    """A two-block cond loop with a call/return pair, looping cleanly.

    0x100..0x108: COND (taken->0x100 twice, then falls to 0x10c)
    0x10c..0x110: CALL -> 0x200
    0x200..0x208: RETURN -> 0x114
    0x114..0x118: DIRECT -> 0x100  (closes the loop)
    """
    recs = []
    for _round in range(3):
        recs.append(BranchRecord(pc=0x108, taken=True, target=0x100,
                                 size=4, kind="cond"))
        recs.append(BranchRecord(pc=0x108, taken=True, target=0x100,
                                 size=4, kind="cond"))
        recs.append(BranchRecord(pc=0x108, taken=False, target=0,
                                 size=4, kind="cond"))
        recs.append(BranchRecord(pc=0x110, taken=True, target=0x200,
                                 size=4, kind="call"))
        recs.append(BranchRecord(pc=0x208, taken=True, target=0x114,
                                 size=4, kind="return"))
        recs.append(BranchRecord(pc=0x118, taken=True, target=0x100,
                                 size=4, kind="direct"))
    return recs


def synth(records, **kw):
    events = derive_block_events(records)
    return synthesize("unit", events, 4, digest="d" * 40, **kw)


class TestKindInference:
    def test_structured_loop(self):
        wl = synth(records_loop())
        kinds = {wl.layout.blocks[b.bid].kind for b in wl.layout.blocks}
        assert BranchKind.COND in kinds
        assert BranchKind.CALL in kinds
        assert BranchKind.RETURN in kinds
        assert BranchKind.DIRECT in kinds
        cond = next(b for b in wl.layout.blocks
                    if b.kind is BranchKind.COND)
        # the stream opens mid-block, so the first taken record lands in
        # a degenerate entry block: the real site sees 5 taken / 3 fall
        assert cond.taken_bias == pytest.approx(5 / 8)
        assert cond.fallthrough is not None

    def test_call_gets_return_point_fallthrough(self):
        wl = synth(records_loop())
        call = next(b for b in wl.layout.blocks
                    if b.kind is BranchKind.CALL)
        ret_point = wl.layout.blocks[call.fallthrough]
        # the return lands where the call said it would
        ret = next(b for b in wl.layout.blocks
                   if b.kind is BranchKind.RETURN)
        assert ret is not None and ret_point.bid == call.fallthrough

    def test_megamorphic_site_becomes_indirect(self):
        recs = []
        targets = [0x1000, 0x2000, 0x3000]
        for i in range(12):
            tgt = targets[i % 3]
            recs.append(BranchRecord(pc=0x108, taken=True, target=tgt,
                                     size=4, kind="unknown"))
            recs.append(BranchRecord(pc=tgt + 8, taken=True, target=0x100,
                                     size=4, kind="unknown"))
        wl = synth(recs)
        disp = wl.layout.blocks[0]  # lowest address = the 0x100 site
        assert disp.kind is BranchKind.INDIRECT
        assert len(disp.indirect_targets) == 3
        assert disp.indirect_weights[-1] == 1.0

    def test_contradictory_fallthrough_promoted_to_indirect(self):
        # two different "fall-through" successors for one site — exactly
        # what downsampling window stitches produce — must promote the
        # site to INDIRECT, not crash or emit an invalid layout
        from repro.traces.schema import BlockEvent

        def ev(start, end, taken, target):
            return BlockEvent(start=start, end=end, size=4, taken=taken,
                              target=target, kind="unknown")

        events = [
            ev(0x100, 0x108, False, 0),        # falls into (0x10c, 0x118)
            ev(0x10c, 0x118, True, 0x100),
            ev(0x100, 0x108, False, 0),        # "falls" into (0x120, ...)
            ev(0x120, 0x130, True, 0x100),     # (a window stitch)
        ]
        wl = synthesize("unit", events, 4, digest="d" * 40)
        site = next(b for b in wl.layout.blocks
                    if b.kind is BranchKind.INDIRECT)
        assert len(site.indirect_targets) == 2


class TestOutput:
    def test_layout_validates_and_replayer_verifies(self):
        # synthesize() runs layout.validate() and a strict verify pass
        # internally; surviving construction is the assertion
        wl = synth(records_loop())
        walker = wl.walker()
        seen = [walker.next_event() for _ in range(3 * len(wl.layout.blocks))]
        assert len(seen) > len(wl.layout.blocks)  # loop wrapped

    def test_profile_carries_trace_identity(self):
        wl = synth(records_loop())
        assert isinstance(wl.profile, TraceProfile)
        assert isinstance(wl.profile, WorkloadProfile)
        assert wl.profile.trace_digest == "d" * 40
        assert wl.profile.trace_events == len(derive_block_events(
            records_loop()))
        assert wl.profile.trace_instructions == wl.instructions

    def test_profile_overrides_apply(self):
        wl = synth(records_loop(),
                   profile_overrides={"backend_stall_prob": 0.25})
        assert wl.profile.backend_stall_prob == 0.25

    def test_functions_grouped_on_call_entries(self):
        wl = synth(records_loop())
        # the callee at 0x200 must start its own function
        assert len(wl.layout.functions) >= 2
        entries = {wl.layout.blocks[f.entry].bid for f in wl.layout.functions}
        assert len(entries) == len(wl.layout.functions)

    def test_deterministic(self):
        a = synth(records_loop())
        b = synth(records_loop())
        assert a.replay_text == b.replay_text
        assert [(blk.addr, blk.kind) for blk in a.layout.blocks] == \
            [(blk.addr, blk.kind) for blk in b.layout.blocks]

    def test_zero_events_rejected(self):
        with pytest.raises(ValueError):
            synthesize("unit", [], 4)

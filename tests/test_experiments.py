"""Tests for the experiment drivers (tiny budgets, isolated cache)."""

import pytest

from repro.experiments import (
    common,
    fig01_topdown,
    fig03_prior_techniques,
    fig04_fec_fraction,
    fig09_mpki,
    fig10_speedup,
    fig11_late_prefetches,
    fig12_fec_stall_reduction,
    fig13_table_sensitivity,
    fig14_btb_sensitivity,
    fig15_storage_efficiency,
    fig16_trigger_distribution,
    tab01_config,
    tab04_ppki_accuracy,
    tab05_energy_area,
)

TINY = dict(instructions=6000, warmup=1500)
BENCHES = ["noop", "sibench"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
    monkeypatch.delenv("REPRO_WARMUP", raising=False)
    monkeypatch.delenv("REPRO_BENCHMARKS", raising=False)


class TestCommon:
    def test_budget_defaults(self):
        instructions, warmup = common.budget()
        assert instructions > warmup > 0

    def test_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "123")
        monkeypatch.setenv("REPRO_WARMUP", "45")
        assert common.budget() == (123, 45)

    def test_budget_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "123")
        assert common.budget(instructions=777)[0] == 777

    def test_suite_env_csv(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "noop, tpcc")
        assert common.suite() == ["noop", "tpcc"]

    def test_suite_env_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "all")
        assert len(common.suite(default=("noop",))) == 16

    def test_format_table(self):
        text = common.format_table(["a", "bb"], [["x", 1.5], ["yy", 2]],
                                   title="T")
        assert "T" in text and "x" in text and "1.50" in text


class TestSlowFigures:
    """Each driver runs end-to-end at a tiny budget and renders."""

    def test_fig01(self):
        result = fig01_topdown.run(**TINY)
        assert sum(result["measured"].values()) == pytest.approx(100, abs=1)
        assert "Figure 1" in fig01_topdown.render(result)

    def test_fig03(self):
        result = fig03_prior_techniques.run(benchmarks=BENCHES, **TINY)
        assert set(result["speedups"].keys()) == set(BENCHES)
        assert "FEC-Ideal" in fig03_prior_techniques.render(result)

    def test_fig04(self):
        result = fig04_fec_fraction.run(benchmarks=BENCHES, **TINY)
        for row in result["rows"].values():
            assert 0 <= row["fec_line_pct"] <= 100
            assert 0 <= row["fec_starvation_pct"] <= 100
        fig04_fec_fraction.render(result)

    def test_fig09(self):
        result = fig09_mpki.run(benchmarks=BENCHES, **TINY)
        for row in result["rows"].values():
            assert row["l1i"] >= row["l2i"] >= 0
        fig09_mpki.render(result)

    def test_fig10(self):
        result = fig10_speedup.run(benchmarks=BENCHES, **TINY)
        assert "pdip_44" in result["geomeans"]
        assert "capture" in fig10_speedup.render(result).lower()

    def test_fig11(self):
        result = fig11_late_prefetches.run(benchmarks=BENCHES, **TINY)
        for row in result["rows"].values():
            assert 0 <= row["pdip_44"] <= 100
        fig11_late_prefetches.render(result)

    def test_fig12(self):
        result = fig12_fec_stall_reduction.run(benchmarks=BENCHES, **TINY)
        assert "pdip_44" in result["average"] or "pdip_44" in \
            next(iter(result["rows"].values()))
        fig12_fec_stall_reduction.render(result)

    def test_fig13(self):
        result = fig13_table_sensitivity.run(benchmarks=BENCHES, **TINY)
        assert set(result["geomeans"]) == {"pdip_11", "pdip_22", "pdip_44",
                                           "pdip_87"}
        fig13_table_sensitivity.render(result)

    def test_fig14(self):
        result = fig14_btb_sensitivity.run(benchmarks=["noop"],
                                           btb_sizes=(2048, 4096), **TINY)
        assert set(result["gains"]) == {2048, 4096}
        fig14_btb_sensitivity.render(result)

    def test_fig15(self):
        result = fig15_storage_efficiency.run(benchmarks=["noop"],
                                              btb_sizes=(2048, 4096), **TINY)
        # FDIP's first point is the normalization reference (gain 0)
        first = result["points"]["baseline"][0]
        assert first["gain_pct"] == pytest.approx(0.0)
        # storage increases with BTB size along each series
        for series in result["points"].values():
            kbs = [p["storage_kb"] for p in series]
            assert kbs == sorted(kbs)
        fig15_storage_efficiency.render(result)

    def test_fig16(self):
        result = fig16_trigger_distribution.run(benchmarks=BENCHES, **TINY)
        avg = result["average"]
        assert avg["mispredict_pct"] + avg["last_taken_pct"] == \
            pytest.approx(100.0, abs=0.1)
        fig16_trigger_distribution.render(result)

    def test_tab04(self):
        result = tab04_ppki_accuracy.run(benchmarks=BENCHES, **TINY)
        assert set(result["means"]) == {"eip_46", "eip_analytical",
                                        "pdip_11", "pdip_44"}
        tab04_ppki_accuracy.render(result)


class TestInstantTables:
    def test_tab01(self):
        result = tab01_config.run()
        assert result["ours"]["FTQ"] == "24 entries"
        assert "Table 1" in tab01_config.render(result)

    def test_tab05(self):
        result = tab05_energy_area.run()
        assert set(result["rows"]) == {"PDIP(11)", "PDIP(22)", "PDIP(44)",
                                       "PDIP(87)"}
        text = tab05_energy_area.render(result)
        assert "PDIP(44)" in text

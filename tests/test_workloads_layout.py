"""Tests for the static code layout model."""

import pytest

from repro.utils import INSTRUCTION_SIZE, LINE_SIZE
from repro.workloads.layout import BasicBlock, BranchKind, CodeLayout, Function


def make_block(bid=0, addr=0x1000, n=4, **kw):
    return BasicBlock(bid=bid, addr=addr, num_instructions=n, **kw)


class TestBasicBlock:
    def test_size_bytes(self):
        assert make_block(n=5).size_bytes == 5 * INSTRUCTION_SIZE

    def test_end_addr(self):
        b = make_block(addr=0x1000, n=3)
        assert b.end_addr == 0x1000 + 3 * INSTRUCTION_SIZE

    def test_branch_pc_is_last_instruction(self):
        b = make_block(addr=0x1000, n=4)
        assert b.branch_pc == 0x1000 + 3 * INSTRUCTION_SIZE

    def test_single_instruction_branch_pc(self):
        b = make_block(addr=0x1000, n=1)
        assert b.branch_pc == 0x1000

    def test_is_branch(self):
        assert not make_block(kind=BranchKind.FALLTHROUGH).is_branch
        assert make_block(kind=BranchKind.COND).is_branch
        assert make_block(kind=BranchKind.RETURN).is_branch

    def test_lines_single(self):
        b = make_block(addr=0x1000, n=2)
        assert b.lines() == [0x1000 // LINE_SIZE]

    def test_lines_crossing(self):
        b = make_block(addr=0x1000 + LINE_SIZE - INSTRUCTION_SIZE, n=2)
        assert len(b.lines()) == 2


def tiny_layout():
    """Two-function layout: f0 = dispatcher-ish loop, f1 = callee."""
    blocks = [
        BasicBlock(bid=0, addr=0x1000, num_instructions=2, fid=0,
                   kind=BranchKind.CALL, taken_target=2, fallthrough=1),
        BasicBlock(bid=1, addr=0x1008, num_instructions=2, fid=0,
                   kind=BranchKind.DIRECT, taken_target=0, fallthrough=None),
        BasicBlock(bid=2, addr=0x2000, num_instructions=3, fid=1,
                   kind=BranchKind.RETURN, fallthrough=None),
    ]
    functions = [
        Function(fid=0, name="main", entry=0, blocks=[0, 1]),
        Function(fid=1, name="callee", entry=2, blocks=[2]),
    ]
    return CodeLayout(blocks=blocks, functions=functions)


class TestCodeLayout:
    def test_validate_ok(self):
        tiny_layout().validate()

    def test_num_blocks(self):
        assert tiny_layout().num_blocks == 3

    def test_total_instructions(self):
        assert tiny_layout().total_instructions == 7

    def test_footprint_lines(self):
        lay = tiny_layout()
        assert lay.footprint_lines() == 2  # 0x1000.. and 0x2000..

    def test_entry_index(self):
        lay = tiny_layout()
        idx = lay.entry_index()
        assert idx[0x1000] == 0
        assert idx[0x2000] == 2

    def test_entry_index_cached(self):
        lay = tiny_layout()
        assert lay.entry_index() is lay.entry_index()

    def test_block_at(self):
        lay = tiny_layout()
        assert lay.block_at(0x1004).bid == 0
        assert lay.block_at(0x2004).bid == 2
        assert lay.block_at(0x9999) is None

    def test_validate_rejects_bad_successor(self):
        lay = tiny_layout()
        lay.blocks[0].taken_target = 99
        with pytest.raises(ValueError):
            lay.validate()

    def test_validate_rejects_empty_block(self):
        lay = tiny_layout()
        lay.blocks[0].num_instructions = 0
        with pytest.raises(ValueError):
            lay.validate()

    def test_validate_rejects_cond_without_fallthrough(self):
        lay = tiny_layout()
        lay.blocks[0].kind = BranchKind.COND
        lay.blocks[0].fallthrough = None
        with pytest.raises(ValueError):
            lay.validate()

    def test_validate_rejects_indirect_without_targets(self):
        lay = tiny_layout()
        lay.blocks[0].kind = BranchKind.INDIRECT
        lay.blocks[0].indirect_targets = ()
        with pytest.raises(ValueError):
            lay.validate()

    def test_validate_rejects_bad_bias(self):
        lay = tiny_layout()
        lay.blocks[0].kind = BranchKind.COND
        lay.blocks[0].taken_bias = 1.5
        with pytest.raises(ValueError):
            lay.validate()

"""Tests for the ablation drivers (tiny budgets, isolated cache)."""

import pytest

from repro.experiments import ablations

TINY = dict(instructions=5000, warmup=1000, benchmarks=["noop"])


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
    monkeypatch.delenv("REPRO_WARMUP", raising=False)
    monkeypatch.delenv("REPRO_BENCHMARKS", raising=False)


class TestAblations:
    def test_insertion_probability_sweep_shape(self):
        result = ablations.insertion_probability(**TINY)
        assert set(result) == {"p=0.03", "p=0.125", "p=0.25", "p=0.5",
                               "p=1"}

    def test_candidate_filter_variants(self):
        result = ablations.candidate_filter(**TINY)
        assert "high-cost + backend-stall (paper)" in result
        assert "all FEC lines" in result

    def test_table_geometry_variants(self):
        result = ablations.table_geometry(**TINY)
        assert "2 targets, 4-bit mask (paper)" in result
        assert len(result) == 5

    def test_ftq_depth_sweep(self):
        result = ablations.ftq_depth(**TINY)
        assert set(result) == {"ftq=8", "ftq=16", "ftq=24", "ftq=48"}

    def test_emissary_knobs(self):
        result = ablations.emissary_knobs(**TINY)
        assert any("1/32" not in k and "0.031" in k for k in result)

    def test_itlb_variants(self):
        result = ablations.itlb(**TINY)
        assert len(result) == 2

    def test_render(self):
        text = ablations.render({"a": 1.0, "b": -0.5}, "T")
        assert "T" in text and "+1.00%" in text and "-0.50%" in text

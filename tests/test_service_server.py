"""Failure-mode tests for the async simulation job server.

Each test runs a real :class:`SimulationServer` — event loop in a
background thread, real :class:`ProcessPoolExecutor` workers, real
hand-framed HTTP over a loopback socket — and drives it with the
stdlib :class:`~repro.service.client.ServiceClient`. Fault injection
(``fault: crash|fail|hang``) exercises the recovery ladder: per-job
timeout -> pool reset -> retry with backoff -> terminal ``failed``;
worker crash -> ``BrokenProcessPool`` -> pool reset -> server survives.
The drain tests check the SIGTERM contract: no new submissions, the
backlog finishes and persists, the process exits 0.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobState, normalize_submission
from repro.service.server import SimulationServer
from repro.service.store import ResultStore
from repro.simulator.runner import run_benchmark

CELL = dict(benchmark="noop", policy="baseline", instructions=2000,
            warmup=300)


class Harness:
    """A live server on an ephemeral port, event loop in a thread."""

    def __init__(self, **kwargs):
        self.server = SimulationServer(**kwargs)
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server failed to start"

    def _run(self):
        asyncio.run(self._amain())

    async def _amain(self):
        _, self.port = await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self.server.serve_until_drained()

    def client(self, timeout=15.0):
        return ServiceClient(port=self.port, timeout=timeout)

    def stop(self, timeout=60.0):
        try:
            self.client().drain()
        except (ServiceError, OSError):
            pass  # already draining or already gone
        self._thread.join(timeout)
        return not self._thread.is_alive()


@pytest.fixture
def harness(tmp_path, monkeypatch):
    """Factory for servers; every one is drained at teardown."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
    servers = []

    def make(**kwargs):
        kwargs.setdefault("jobs", 1)
        h = Harness(**kwargs)
        servers.append(h)
        return h

    yield make
    for h in servers:
        assert h.stop(), "server did not drain at teardown"


def wait_state(client, job_id, state, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if job["state"] == state:
            return job
        if (job["state"] in JobState.TERMINAL
                and state not in JobState.TERMINAL):
            raise AssertionError("job went %s while waiting for %s: %r"
                                 % (job["state"], state, job))
        time.sleep(0.02)
    raise AssertionError("job never reached %s" % state)


class TestExecuteAndStore:
    def test_submit_executes_bit_identical(self, harness, tmp_path):
        h = harness(store=ResultStore(tmp_path / "store"))
        client = h.client()
        job = client.submit(**CELL)
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == JobState.DONE
        assert done["source"].startswith("pid:")
        stats = client.result(job["id"])["stats"]
        local = run_benchmark(use_cache=False, seed=1, **CELL)
        assert stats == local.to_dict()
        # the cell was persisted under its canonical key
        key = ResultStore.cell_key(CELL["benchmark"], CELL["policy"],
                                   CELL["instructions"], CELL["warmup"])
        assert done["key"] == key
        assert h.server.store.get(key).to_dict() == local.to_dict()
        assert h.server.counters["executed"] == 1

    def test_resubmit_after_done_is_store_hit(self, harness, tmp_path):
        h = harness(store=ResultStore(tmp_path / "store"))
        client = h.client()
        first = client.wait(client.submit(**CELL)["id"], timeout=60)
        second = client.wait(client.submit(**CELL)["id"], timeout=60)
        assert second["id"] != first["id"]
        assert second["state"] == JobState.DONE
        assert second["source"] == "store"
        assert h.server.counters["executed"] == 1
        assert h.server.counters["store_hits"] == 1
        a = h.client().result(first["id"])["stats"]
        b = h.client().result(second["id"])["stats"]
        assert a == b

    def test_result_before_done_is_409(self, harness):
        h = harness(allow_faults=True, timeout=1.0, retries=0)
        client = h.client()
        job = client.submit("noop", fault="hang", fault_seconds=5)
        with pytest.raises(ServiceError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409
        client.wait(job["id"], timeout=30)

    def test_unknown_job_is_404(self, harness):
        h = harness()
        with pytest.raises(ServiceError) as exc:
            h.client().status("nope")
        assert exc.value.status == 404


class TestValidation:
    def test_unknown_benchmark_is_400(self, harness):
        h = harness()
        with pytest.raises(ServiceError) as exc:
            h.client().submit("not-a-benchmark")
        assert exc.value.status == 400

    def test_unknown_config_field_is_400(self, harness):
        h = harness()
        with pytest.raises(ServiceError) as exc:
            h.client().submit("noop", config={"btb_entires": 4096})
        assert exc.value.status == 400
        assert "btb_entires" in str(exc.value)

    def test_fault_without_flag_is_403(self, harness):
        h = harness()  # allow_faults defaults to False
        with pytest.raises(ServiceError) as exc:
            h.client().submit("noop", fault="crash")
        assert exc.value.status == 403

    def test_normalize_defaults(self):
        payload = normalize_submission({"benchmark": "noop"})
        assert payload["policy"] == "baseline"
        assert payload["seed"] == 1
        assert payload["instructions"] > 0


class TestCoalescing:
    def test_duplicate_inflight_coalesces(self, harness):
        h = harness(allow_faults=True, timeout=2.0, retries=0)
        client = h.client()
        # occupy the single worker so the real cell stays queued
        blocker = client.submit("noop", fault="hang", fault_seconds=10)
        wait_state(client, blocker["id"], JobState.RUNNING)
        a = client.submit(**CELL)
        b = client.submit(**CELL)
        assert b["id"] == a["id"]
        assert h.server.counters["coalesced"] == 1
        client.wait(a["id"], timeout=60)
        client.wait(blocker["id"], timeout=60)
        assert h.server.counters["executed"] == 1


class TestQueueBackpressure:
    def test_queue_full_is_429(self, harness):
        h = harness(queue_limit=1, allow_faults=True, timeout=2.0,
                    retries=0)
        client = h.client()
        blocker = client.submit("noop", fault="hang", fault_seconds=10)
        wait_state(client, blocker["id"], JobState.RUNNING)
        queued = client.submit(**CELL)
        with pytest.raises(ServiceError) as exc:
            client.submit("noop", policy="pdip_44", instructions=2000,
                          warmup=300)
        assert exc.value.status == 429
        assert "retry_after_s" in exc.value.payload
        client.wait(queued["id"], timeout=60)
        client.wait(blocker["id"], timeout=60)


class TestFailureRecovery:
    def test_timeout_retries_then_failed(self, harness):
        h = harness(allow_faults=True, timeout=0.4, retries=2,
                    backoff=0.05)
        client = h.client()
        job = client.submit("noop", fault="hang", fault_seconds=30)
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == JobState.FAILED
        assert done["attempts"] == 3
        assert "timed out" in done["error"]
        assert h.server.counters["timeouts"] == 3
        assert h.server.counters["retries"] == 2
        assert h.server.counters["failed"] == 1

    def test_worker_crash_recovered(self, harness, tmp_path):
        h = harness(store=ResultStore(tmp_path / "store"),
                    allow_faults=True, retries=1, backoff=0.05)
        client = h.client()
        crash = client.submit("noop", fault="crash")
        done = client.wait(crash["id"], timeout=60)
        assert done["state"] == JobState.FAILED
        assert h.server.counters["worker_crashes"] == 2
        # the pool was replaced: a real cell still executes and persists
        job = client.wait(client.submit(**CELL)["id"], timeout=60)
        assert job["state"] == JobState.DONE
        assert len(h.server.store) == 1

    def test_injected_exception_retries_then_failed(self, harness):
        h = harness(allow_faults=True, retries=1, backoff=0.05)
        client = h.client()
        job = client.submit("noop", fault="fail")
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == JobState.FAILED
        assert done["attempts"] == 2
        assert "injected failure" in done["error"]


class TestCancel:
    def test_cancel_queued_is_immediate(self, harness):
        h = harness(allow_faults=True, timeout=2.0, retries=0)
        client = h.client()
        blocker = client.submit("noop", fault="hang", fault_seconds=10)
        wait_state(client, blocker["id"], JobState.RUNNING)
        queued = client.submit(**CELL)
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == JobState.CANCELLED
        assert h.server.counters["cancelled"] == 1
        assert h.server.counters["executed"] == 0
        client.wait(blocker["id"], timeout=60)

    def test_cancel_running_at_attempt_boundary(self, harness):
        h = harness(allow_faults=True, timeout=0.4, retries=5,
                    backoff=0.05)
        client = h.client()
        job = client.submit("noop", fault="hang", fault_seconds=30)
        wait_state(client, job["id"], JobState.RUNNING)
        flagged = client.cancel(job["id"])
        assert flagged["cancel_requested"] is True
        assert flagged["state"] == JobState.RUNNING
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == JobState.CANCELLED
        assert done["attempts"] < 6  # cancelled long before retries ran out

    def test_cancel_terminal_is_409(self, harness):
        h = harness()
        client = h.client()
        job = client.wait(client.submit(**CELL)["id"], timeout=60)
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409


class TestDrain:
    def test_drain_finishes_backlog_and_persists(self, harness, tmp_path):
        root = tmp_path / "store"
        h = harness(store=ResultStore(root))
        client = h.client()
        a = client.submit(**CELL)
        b = client.submit("noop", policy="pdip_44", instructions=2000,
                          warmup=300)
        client.drain()
        with pytest.raises(ServiceError) as exc:
            client.submit("noop", policy="2x_il1", instructions=2000,
                          warmup=300)
        assert exc.value.status == 503
        assert h.stop(), "drain did not complete"
        assert h.server.jobs[a["id"]].state == JobState.DONE
        assert h.server.jobs[b["id"]].state == JobState.DONE
        with ResultStore(root) as store:  # reopen: server closed its handle
            assert len(store) == 2


@pytest.mark.skipif(not hasattr(signal, "SIGTERM"), reason="POSIX only")
class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ,
                   PYTHONPATH=str(src),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"),
                   REPRO_NO_MANIFEST="1")
        store_root = tmp_path / "store"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "1", "--store", str(store_root)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", line)
            assert match, "no listen line: %r" % line
            client = ServiceClient(port=int(match.group(1)), timeout=15)
            job = client.submit(**CELL)
            # SIGTERM while the cell may still be running: the drain
            # must let it finish and persist before the process exits
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        with ResultStore(store_root) as store:
            key = ResultStore.cell_key(CELL["benchmark"], CELL["policy"],
                                       CELL["instructions"],
                                       CELL["warmup"])
            assert store.get(key) is not None
        assert job["state"] in (JobState.QUEUED, JobState.RUNNING,
                                JobState.DONE)
